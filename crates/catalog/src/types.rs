//! Scalar column types and runtime values.
//!
//! The paper's view class (indexed views in SQL Server 2000) only needs a
//! small scalar vocabulary: integers, decimals, strings and dates. We model
//! dates as days since 1970-01-01 so that range predicates over dates reduce
//! to integer interval arithmetic, exactly like the ranges in section 3.1.2
//! of the paper.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (stands in for SQL `DECIMAL` in TPC-H).
    Float,
    /// Variable-length string (`CHAR`/`VARCHAR`).
    Str,
    /// Calendar date, stored as days since the Unix epoch.
    Date,
}

impl ColumnType {
    /// Whether values of this type support arithmetic (`+`, `-`, `*`, `/`).
    pub fn is_numeric(self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Float)
    }

    /// Whether two column types may be compared with `<`, `=`, etc.
    ///
    /// Numeric types are mutually comparable; all other types only compare
    /// with themselves.
    pub fn comparable_with(self, other: ColumnType) -> bool {
        self == other || (self.is_numeric() && other.is_numeric())
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "VARCHAR",
            ColumnType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A runtime scalar value.
///
/// `Value` implements [`Eq`] and [`Hash`] so that rows can be grouped and
/// hash-joined; float equality is defined on the bit pattern after
/// normalizing NaN and `-0.0`, which is the standard trick for using floats
/// as grouping keys. *SQL comparison* semantics (where `NULL` compares as
/// unknown) are provided separately by [`Value::sql_cmp`].
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String (shared: cloning a row never reallocates the text).
    Str(Arc<str>),
    /// Days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// The runtime type of this value, or `None` for `NULL`.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Str(_) => Some(ColumnType::Str),
            Value::Date(_) => Some(ColumnType::Date),
        }
    }

    /// True iff this is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, widening `Int` to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is `NULL` or the
    /// types are incomparable, `Some(ordering)` otherwise.
    ///
    /// This is the comparison used when evaluating range predicates, both in
    /// the executor and in the interval reasoning of the range subsumption
    /// test.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order used for sorting and clustered-index keys: `NULL` sorts
    /// first, then by type tag, then by value. Unlike [`Value::sql_cmp`],
    /// this is total and never fails.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
                Value::Date(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            _ if tag(self) == 1 && tag(other) == 1 => {
                let a = self.as_f64().expect("numeric");
                let b = other.as_f64().expect("numeric");
                a.total_cmp(&b)
            }
            _ => tag(self).cmp(&tag(other)),
        }
    }

    /// Normalized bits for hashing floats: maps `-0.0` to `0.0` and all NaNs
    /// to one canonical NaN.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0.0f64.to_bits()
        } else {
            f.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Value::float_bits(*a) == Value::float_bits(*b),
            // Cross-numeric equality mirrors `sql_cmp` so that grouping on a
            // mixed Int/Float expression behaves consistently.
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                !b.is_nan() && (*a as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Integers that are exactly representable as floats must hash the
            // same as the equal float (see `PartialEq`). All i64 values we
            // generate fit in the f64 mantissa comfortably.
            Value::Int(i) => {
                1u8.hash(state);
                Value::float_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                Value::float_bits(*f).hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Date(d) => {
                let (y, m, day) = date_from_days(*d);
                write!(f, "DATE '{y:04}-{m:02}-{day:02}'")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

/// Days-since-epoch for a calendar date (proleptic Gregorian).
///
/// Panics on out-of-range months/days; the workload only produces valid
/// dates.
pub fn days_from_date(year: i32, month: u32, day: u32) -> i32 {
    assert!((1..=12).contains(&month), "month out of range: {month}");
    assert!((1..=31).contains(&day), "day out of range: {day}");
    // Howard Hinnant's `days_from_civil` algorithm.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let doy =
        ((153 * (if month > 2 { month - 3 } else { month + 9 }) as i64 + 2) / 5) + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Inverse of [`days_from_date`].
pub fn date_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Parse `YYYY-MM-DD` into days since epoch.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_date(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1992, 1, 1),
            (1998, 12, 31),
            (2000, 2, 29),
            (1900, 3, 1),
            (2038, 1, 19),
        ] {
            let days = days_from_date(y, m, d);
            assert_eq!(date_from_days(days), (y, m, d), "roundtrip {y}-{m}-{d}");
        }
        assert_eq!(days_from_date(1970, 1, 1), 0);
        assert_eq!(days_from_date(1970, 1, 2), 1);
        assert_eq!(days_from_date(1969, 12, 31), -1);
    }

    #[test]
    fn parse_date_accepts_valid_rejects_invalid() {
        assert_eq!(parse_date("1994-01-01"), Some(days_from_date(1994, 1, 1)));
        assert_eq!(parse_date("1994-13-01"), None);
        assert_eq!(parse_date("1994-01"), None);
        assert_eq!(parse_date("x"), None);
    }

    #[test]
    fn sql_cmp_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Str("a".into()).sql_cmp(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        // Strings and numbers are incomparable.
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn eq_and_hash_agree_across_numeric_types() {
        let a = Value::Int(42);
        let b = Value::Float(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(Value::Int(42), Value::Float(42.5));
    }

    #[test]
    fn negative_zero_and_nan_normalize() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        let n1 = Value::Float(f64::NAN);
        let n2 = Value::Float(f64::from_bits(0x7ff8_0000_0000_0001));
        assert_eq!(hash_of(&n1), hash_of(&n2));
    }

    #[test]
    fn total_cmp_is_total_and_null_first() {
        let vals = vec![
            Value::Null,
            Value::Int(-5),
            Value::Float(1.5),
            Value::Int(3),
            Value::Str("abc".into()),
            Value::Date(100),
        ];
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(sorted[0], Value::Null);
        // Numerics interleave correctly.
        assert_eq!(sorted[1], Value::Int(-5));
        assert_eq!(sorted[2], Value::Float(1.5));
        assert_eq!(sorted[3], Value::Int(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(
            Value::Date(days_from_date(1994, 1, 1)).to_string(),
            "DATE '1994-01-01'"
        );
    }

    #[test]
    fn comparability_matrix() {
        assert!(ColumnType::Int.comparable_with(ColumnType::Float));
        assert!(ColumnType::Date.comparable_with(ColumnType::Date));
        assert!(!ColumnType::Str.comparable_with(ColumnType::Int));
        assert!(!ColumnType::Date.comparable_with(ColumnType::Int));
    }
}
