//! Tables, columns and the four constraint kinds the matching algorithm
//! exploits (section 3 of the paper): `NOT NULL`, primary keys, unique
//! constraints, and foreign keys.

use crate::stats::TableStats;
use crate::types::ColumnType;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a base table within a [`Catalog`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifier of a column within its table (position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

/// Identifier of a foreign key within a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForeignKeyId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A column definition.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name (unique within the table).
    pub name: String,
    /// Static type.
    pub ty: ColumnType,
    /// `NOT NULL` declaration. Cardinality-preserving join detection
    /// (section 3.2) requires all foreign-key columns to be non-null.
    pub not_null: bool,
}

/// The kind of a declared key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// Primary key: unique and implicitly `NOT NULL`.
    Primary,
    /// Unique constraint or unique index.
    Unique,
}

/// A uniqueness constraint over a set of columns.
#[derive(Debug, Clone)]
pub struct Key {
    /// Primary or merely unique.
    pub kind: KeyKind,
    /// The key columns, in declaration order.
    pub columns: Vec<ColumnId>,
}

/// A base-table definition.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Columns, addressed by [`ColumnId`] = position.
    pub columns: Vec<Column>,
    /// Declared keys (primary first by convention, but not required).
    pub keys: Vec<Key>,
}

impl Table {
    /// Look up a column by name.
    pub fn column_by_name(&self, name: &str) -> Option<(ColumnId, &Column)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name == name)
            .map(|(i, c)| (ColumnId(i as u32), c))
    }

    /// The column definition for `id`. Panics if out of range.
    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.0 as usize]
    }

    /// Whether `cols` is a superset of some declared key (i.e. uniquely
    /// identifies rows).
    ///
    /// The extra-table test of section 3.2 requires the *referenced* side of
    /// a foreign key to be a unique key of the referenced table.
    pub fn covers_key(&self, cols: &[ColumnId]) -> bool {
        self.keys
            .iter()
            .any(|k| k.columns.iter().all(|kc| cols.contains(kc)))
    }

    /// Whether `cols` is exactly equal (as a set) to some declared key.
    pub fn is_key(&self, cols: &[ColumnId]) -> bool {
        self.keys
            .iter()
            .any(|k| k.columns.len() == cols.len() && k.columns.iter().all(|kc| cols.contains(kc)))
    }
}

/// A foreign-key constraint from `from_table.from_columns[i]` to
/// `to_table.to_columns[i]` for each `i`.
///
/// The paper's cardinality-preserving-join test (section 3.2) requires an
/// equijoin between **all** columns of a non-null foreign key and a unique
/// key of the referenced table; `ForeignKey` carries everything needed to
/// check those requirements.
#[derive(Debug, Clone)]
pub struct ForeignKey {
    /// Constraint name (diagnostics only).
    pub name: String,
    /// Referencing table.
    pub from_table: TableId,
    /// Referencing columns.
    pub from_columns: Vec<ColumnId>,
    /// Referenced table.
    pub to_table: TableId,
    /// Referenced columns (must form a unique key of `to_table`).
    pub to_columns: Vec<ColumnId>,
}

/// The schema catalog: base tables plus foreign keys, and optional
/// statistics per table.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    foreign_keys: Vec<ForeignKey>,
    /// Outgoing foreign keys indexed by referencing table.
    fks_from: HashMap<TableId, Vec<ForeignKeyId>>,
    stats: HashMap<TableId, TableStats>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table. Panics if the name is already taken (schema
    /// definition bugs should fail fast).
    pub fn add_table(&mut self, table: Table) -> TableId {
        assert!(
            !self.by_name.contains_key(&table.name),
            "duplicate table name {}",
            table.name
        );
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(table.name.clone(), id);
        self.tables.push(table);
        id
    }

    /// Register a foreign key. Validates that the referenced columns form a
    /// unique key of the referenced table, which the paper's extra-table
    /// test assumes. Panics on an invalid declaration; use
    /// [`Catalog::try_add_foreign_key`] to handle the error instead.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> ForeignKeyId {
        self.try_add_foreign_key(fk)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Catalog::add_foreign_key`] with a typed error instead of a panic.
    pub fn try_add_foreign_key(&mut self, fk: ForeignKey) -> Result<ForeignKeyId, SchemaError> {
        if fk.from_columns.len() != fk.to_columns.len() {
            return Err(SchemaError::FkArityMismatch {
                name: fk.name.clone(),
            });
        }
        if !self.table(fk.to_table).covers_key(&fk.to_columns) {
            return Err(SchemaError::FkNotUniqueKey {
                name: fk.name.clone(),
            });
        }
        Ok(self.add_foreign_key_unchecked(fk))
    }

    /// Register a foreign key **without** validating it. For ingesting
    /// externally-sourced catalogs whose declarations cannot be trusted
    /// (and for seeding corrupt metadata in the `mv-audit` test suite);
    /// pair with `mv-audit`'s metadata validation pass, which reports
    /// broken declarations as MV12x diagnostics instead of panicking.
    pub fn add_foreign_key_unchecked(&mut self, fk: ForeignKey) -> ForeignKeyId {
        let id = ForeignKeyId(self.foreign_keys.len() as u32);
        self.fks_from.entry(fk.from_table).or_default().push(id);
        self.foreign_keys.push(fk);
        id
    }

    /// Attach (or replace) statistics for a table.
    pub fn set_stats(&mut self, table: TableId, stats: TableStats) {
        self.stats.insert(table, stats);
    }

    /// Statistics for a table, if collected.
    pub fn stats(&self, table: TableId) -> Option<&TableStats> {
        self.stats.get(&table)
    }

    /// The table definition for `id`. Panics if out of range.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// All tables with their ids.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// The foreign key definition for `id`.
    pub fn foreign_key(&self, id: ForeignKeyId) -> &ForeignKey {
        &self.foreign_keys[id.0 as usize]
    }

    /// All foreign keys.
    pub fn foreign_keys(&self) -> impl Iterator<Item = (ForeignKeyId, &ForeignKey)> {
        self.foreign_keys
            .iter()
            .enumerate()
            .map(|(i, fk)| (ForeignKeyId(i as u32), fk))
    }

    /// Foreign keys whose referencing side is `table`.
    pub fn foreign_keys_from(&self, table: TableId) -> impl Iterator<Item = ForeignKeyId> + '_ {
        self.fks_from
            .get(&table)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// Whether all referencing columns of `fk` are declared `NOT NULL` —
    /// one of the five requirements for a cardinality-preserving join.
    pub fn fk_is_non_null(&self, fk: ForeignKeyId) -> bool {
        let fk = self.foreign_key(fk);
        let t = self.table(fk.from_table);
        fk.from_columns.iter().all(|c| t.column(*c).not_null)
    }

    /// Resolve `table.column` names to ids.
    pub fn resolve(&self, table: &str, column: &str) -> Option<(TableId, ColumnId)> {
        let t = self.table_by_name(table)?;
        let (c, _) = self.table(t).column_by_name(column)?;
        Some((t, c))
    }
}

/// Error raised while defining a table through [`TableBuilder`] or a
/// foreign key through [`Catalog::try_add_foreign_key`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A key or unique constraint referenced a column name that was never
    /// added to the table.
    UnknownColumn {
        /// The table being built.
        table: String,
        /// The unresolved column name.
        column: String,
    },
    /// A foreign key's referencing and referenced column lists differ in
    /// length.
    FkArityMismatch {
        /// The constraint name.
        name: String,
    },
    /// A foreign key's referenced columns cover no unique key of the
    /// referenced table (required by the paper's §3.2 extra-table test).
    FkNotUniqueKey {
        /// The constraint name.
        name: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} in {table}")
            }
            SchemaError::FkArityMismatch { name } => {
                write!(f, "foreign key {name} has mismatched column counts")
            }
            SchemaError::FkNotUniqueKey { name } => {
                write!(f, "foreign key {name} does not reference a unique key")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Builder-style convenience for defining tables in tests and schemas.
pub struct TableBuilder {
    table: Table,
    /// First constraint-resolution failure, reported by
    /// [`TableBuilder::try_build`] (chained builder calls cannot return
    /// `Result` themselves).
    error: Option<SchemaError>,
}

impl TableBuilder {
    /// Start a table definition.
    pub fn new(name: &str) -> Self {
        TableBuilder {
            table: Table {
                name: name.to_string(),
                columns: Vec::new(),
                keys: Vec::new(),
            },
            error: None,
        }
    }

    /// Add a `NOT NULL` column.
    pub fn col(mut self, name: &str, ty: ColumnType) -> Self {
        self.table.columns.push(Column {
            name: name.to_string(),
            ty,
            not_null: true,
        });
        self
    }

    /// Add a nullable column.
    pub fn nullable_col(mut self, name: &str, ty: ColumnType) -> Self {
        self.table.columns.push(Column {
            name: name.to_string(),
            ty,
            not_null: false,
        });
        self
    }

    /// Declare the primary key by column names (must already be added).
    pub fn primary_key(mut self, cols: &[&str]) -> Self {
        if let Some(ids) = self.resolve_cols(cols) {
            self.table.keys.push(Key {
                kind: KeyKind::Primary,
                columns: ids,
            });
        }
        self
    }

    /// Declare a unique constraint by column names.
    pub fn unique(mut self, cols: &[&str]) -> Self {
        if let Some(ids) = self.resolve_cols(cols) {
            self.table.keys.push(Key {
                kind: KeyKind::Unique,
                columns: ids,
            });
        }
        self
    }

    /// Resolve names to ids, recording the first failure for
    /// [`TableBuilder::try_build`].
    fn resolve_cols(&mut self, cols: &[&str]) -> Option<Vec<ColumnId>> {
        let mut ids = Vec::with_capacity(cols.len());
        for n in cols {
            match self.table.column_by_name(n) {
                Some((id, _)) => ids.push(id),
                None => {
                    self.error
                        .get_or_insert_with(|| SchemaError::UnknownColumn {
                            table: self.table.name.clone(),
                            column: n.to_string(),
                        });
                    return None;
                }
            }
        }
        Some(ids)
    }

    /// Finish the definition, surfacing any constraint-resolution error.
    pub fn try_build(self) -> Result<Table, SchemaError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.table),
        }
    }

    /// Finish the definition. Panics on an invalid constraint; use
    /// [`TableBuilder::try_build`] to handle the error instead.
    pub fn build(self) -> Table {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let t = TableBuilder::new("t")
            .col("a", ColumnType::Int)
            .col("b", ColumnType::Int)
            .nullable_col("c", ColumnType::Str)
            .primary_key(&["a"])
            .build();
        let s = TableBuilder::new("s")
            .col("x", ColumnType::Int)
            .col("y", ColumnType::Float)
            .primary_key(&["x"])
            .unique(&["y"])
            .build();
        let tid = cat.add_table(t);
        let sid = cat.add_table(s);
        cat.add_foreign_key(ForeignKey {
            name: "t_b_fk".into(),
            from_table: tid,
            from_columns: vec![ColumnId(1)],
            to_table: sid,
            to_columns: vec![ColumnId(0)],
        });
        cat
    }

    #[test]
    fn lookup_by_name() {
        let cat = two_table_catalog();
        let tid = cat.table_by_name("t").unwrap();
        assert_eq!(cat.table(tid).name, "t");
        let (cid, col) = cat.table(tid).column_by_name("c").unwrap();
        assert_eq!(cid, ColumnId(2));
        assert!(!col.not_null);
        assert_eq!(cat.resolve("s", "y"), Some((TableId(1), ColumnId(1))));
        assert_eq!(cat.resolve("s", "nope"), None);
        assert_eq!(cat.resolve("nope", "y"), None);
    }

    #[test]
    fn key_coverage() {
        let cat = two_table_catalog();
        let s = cat.table(cat.table_by_name("s").unwrap());
        assert!(s.covers_key(&[ColumnId(0)]));
        assert!(s.covers_key(&[ColumnId(0), ColumnId(1)]));
        assert!(s.covers_key(&[ColumnId(1)])); // unique(y)
        assert!(s.is_key(&[ColumnId(0)]));
        assert!(!s.is_key(&[ColumnId(0), ColumnId(1)]));
        let t = cat.table(cat.table_by_name("t").unwrap());
        assert!(!t.covers_key(&[ColumnId(1)]));
    }

    #[test]
    fn foreign_key_queries() {
        let cat = two_table_catalog();
        let tid = cat.table_by_name("t").unwrap();
        let fks: Vec<_> = cat.foreign_keys_from(tid).collect();
        assert_eq!(fks.len(), 1);
        assert!(cat.fk_is_non_null(fks[0]));
        let sid = cat.table_by_name("s").unwrap();
        assert_eq!(cat.foreign_keys_from(sid).count(), 0);
    }

    #[test]
    #[should_panic(expected = "does not reference a unique key")]
    fn fk_must_reference_unique_key() {
        let mut cat = two_table_catalog();
        let tid = cat.table_by_name("t").unwrap();
        let sid = cat.table_by_name("s").unwrap();
        // s has no key on column index 1 alone? It does (unique y). Use a
        // non-key column of t as target instead.
        cat.add_foreign_key(ForeignKey {
            name: "bad".into(),
            from_table: sid,
            from_columns: vec![ColumnId(0)],
            to_table: tid,
            to_columns: vec![ColumnId(1)],
        });
    }

    #[test]
    fn try_add_foreign_key_reports_typed_errors() {
        let mut cat = two_table_catalog();
        let tid = cat.table_by_name("t").unwrap();
        let sid = cat.table_by_name("s").unwrap();
        let err = cat
            .try_add_foreign_key(ForeignKey {
                name: "bad_arity".into(),
                from_table: sid,
                from_columns: vec![ColumnId(0), ColumnId(1)],
                to_table: tid,
                to_columns: vec![ColumnId(0)],
            })
            .unwrap_err();
        assert_eq!(
            err,
            SchemaError::FkArityMismatch {
                name: "bad_arity".into()
            }
        );
        let err = cat
            .try_add_foreign_key(ForeignKey {
                name: "bad_key".into(),
                from_table: sid,
                from_columns: vec![ColumnId(0)],
                to_table: tid,
                to_columns: vec![ColumnId(1)],
            })
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "foreign key bad_key does not reference a unique key"
        );
        // The unchecked path records the declaration as given.
        let before = cat.foreign_keys().count();
        cat.add_foreign_key_unchecked(ForeignKey {
            name: "bad_key".into(),
            from_table: sid,
            from_columns: vec![ColumnId(0)],
            to_table: tid,
            to_columns: vec![ColumnId(1)],
        });
        assert_eq!(cat.foreign_keys().count(), before + 1);
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_table_rejected() {
        let mut cat = two_table_catalog();
        cat.add_table(TableBuilder::new("t").col("z", ColumnType::Int).build());
    }

    #[test]
    fn try_build_reports_unknown_column() {
        let err = TableBuilder::new("t")
            .col("a", ColumnType::Int)
            .primary_key(&["missing"])
            .try_build()
            .unwrap_err();
        assert_eq!(
            err,
            SchemaError::UnknownColumn {
                table: "t".into(),
                column: "missing".into(),
            }
        );
        assert_eq!(err.to_string(), "unknown column missing in t");
    }

    #[test]
    #[should_panic(expected = "unknown column missing in t")]
    fn build_panics_on_unknown_column() {
        let _ = TableBuilder::new("t")
            .col("a", ColumnType::Int)
            .unique(&["missing"])
            .build();
    }
}
