//! Incremental maintenance of materialized views, with a freshness audit.
//!
//! The matcher treats a substitute as an *equivalent* rewrite, which is
//! only true while the view's stored contents reflect the base tables. This
//! crate keeps them reflecting: base-table deltas (bags of inserted and
//! deleted rows) are propagated through each registered view's SPJ plan and
//! rolled up through its aggregates, so view contents track writes without
//! recomputation.
//!
//! Propagation rules (single-occurrence views — a table appearing once):
//!
//! * **SPJ**: the view is linear in each base table, so
//!   `V(T − Δ⁻ + Δ⁺) = V(T) − V[T↦Δ⁻] + V[T↦Δ⁺]` as bags, where
//!   `V[T↦X]` evaluates the view with `T`'s rows replaced by `X` and every
//!   other table at its current state. Both delta joins reuse the compiled
//!   [`PlanProgram`] for the view.
//! * **Aggregates** (`COUNT(*)`/`SUM` over integer arguments): the same
//!   delta joins run over the view's SPJ core (group-by expressions plus
//!   sum arguments), then fold into counting state — per-group row count
//!   and per-sum (non-null count, exact integer total). Inserts increment,
//!   deletes decrement; a group whose count reaches zero is deleted.
//!   `SUM` yields NULL when its non-null count is zero, matching
//!   [`mv_exec::agg::SumAcc`].
//!
//! Self-joins (a table occurring twice) and float-typed sums fall back to
//! recompute-from-scratch: the former needs quadratic delta terms, and the
//! latter cannot reproduce `SumAcc`'s order-dependent float accumulation
//! by adding and subtracting deltas. Such views are marked *dirty* by a
//! relevant delta and recomputed by [`Maintainer::refresh`].
//!
//! The audit side ([`Maintainer::audit`], [`audit_serving`]) checks the
//! MV4xx invariants: maintained contents equal recompute-from-scratch as
//! row bags (MV401), `Fresh`-stamped substitutes really are fresh and
//! execute to the query's rows (MV402), no zombie groups survive at count
//! zero (MV403), and no view's data-epoch stamp leads its tables (MV404).

use mv_catalog::{ColumnType, TableId, Value};
use mv_core::MatchingEngine;
use mv_data::{Database, Row};
use mv_exec::{bag_diff, execute_spjg, execute_substitute_with, ExecScratch, PlanProgram, RowBag};
use mv_plan::{AggFunc, NamedExpr, OutputList, SpjgExpr, ViewDef, ViewId};
use mv_verify::{Diagnostic, RuleId, Severity};
use std::collections::HashMap;

/// One write round against a base table: a bag of inserted rows and a bag
/// of deleted rows (each delete removes one matching stored copy).
#[derive(Debug, Clone)]
pub struct TableDelta {
    /// The written table.
    pub table: TableId,
    /// Rows appended this round.
    pub inserts: Vec<Row>,
    /// Rows removed this round (must currently exist in the table).
    pub deletes: Vec<Row>,
}

impl TableDelta {
    /// An insert-only delta.
    pub fn insert(table: TableId, rows: Vec<Row>) -> Self {
        TableDelta {
            table,
            inserts: rows,
            deletes: Vec::new(),
        }
    }

    /// A delete-only delta.
    pub fn delete(table: TableId, rows: Vec<Row>) -> Self {
        TableDelta {
            table,
            inserts: Vec::new(),
            deletes: rows,
        }
    }
}

/// How a registered view is kept current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainStrategy {
    /// Delta joins applied in place after every write round.
    Incremental,
    /// A relevant write marks the view dirty; [`Maintainer::refresh`]
    /// recomputes it from the base tables.
    Recompute,
}

/// What one [`Maintainer::apply`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Views updated in place by delta propagation.
    pub maintained: usize,
    /// Views marked dirty (recompute strategy, or already dirty).
    pub marked_dirty: usize,
    /// Base rows actually removed (shortfall against `deletes.len()` means
    /// the delta named rows the table did not contain).
    pub rows_deleted: usize,
}

/// Exact integer SUM state: NULLs are skipped (`nonnull` counts the rest),
/// and the total uses the same wrapping arithmetic as
/// [`mv_exec::agg::SumAcc`], so adding then subtracting a delta restores
/// the previous state bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
struct SumState {
    nonnull: i64,
    total: i64,
}

impl SumState {
    fn fold(&mut self, v: &Value, sign: i64) {
        if let Value::Int(i) = v {
            self.nonnull += sign;
            self.total = if sign >= 0 {
                self.total.wrapping_add(*i)
            } else {
                self.total.wrapping_sub(*i)
            };
        }
    }

    fn finish(&self, zero_default: bool) -> Value {
        if self.nonnull == 0 {
            if zero_default {
                Value::Int(0)
            } else {
                Value::Null
            }
        } else {
            Value::Int(self.total)
        }
    }
}

/// Counting state for one group.
#[derive(Debug, Clone)]
struct GroupState {
    count: i64,
    sums: Vec<SumState>,
}

/// Which core-output slot feeds each aggregate of the view.
#[derive(Debug, Clone, Copy)]
enum AggSpec {
    CountStar,
    Sum { slot: usize, zero_default: bool },
}

/// The counting rollup of an aggregate view.
#[derive(Debug)]
struct AggCore {
    /// SPJ projection of the group-by expressions followed by every sum
    /// argument — the shape the delta joins evaluate.
    core: SpjgExpr,
    prog: PlanProgram,
    n_keys: usize,
    aggs: Vec<AggSpec>,
    groups: HashMap<Vec<Value>, GroupState>,
}

impl AggCore {
    fn n_sums(&self) -> usize {
        self.aggs
            .iter()
            .filter(|a| matches!(a, AggSpec::Sum { .. }))
            .count()
    }

    /// Fold one bag of core rows with the given sign (+1 insert, −1
    /// delete). Groups emptied by deletes are dropped.
    fn fold(&mut self, rows: &[Row], sign: i64) {
        let n_sums = self.n_sums();
        for row in rows {
            let key = row[..self.n_keys].to_vec();
            let g = self.groups.entry(key).or_insert_with(|| GroupState {
                count: 0,
                sums: vec![SumState::default(); n_sums],
            });
            g.count += sign;
            let mut si = 0;
            for spec in &self.aggs {
                if let AggSpec::Sum { slot, .. } = spec {
                    g.sums[si].fold(&row[*slot], sign);
                    si += 1;
                }
            }
        }
        self.groups.retain(|_, g| g.count > 0);
    }

    /// The finished aggregate rows: group key columns, then aggregate
    /// values in declaration order. A scalar aggregate (no group-by) over
    /// an emptied view still yields its one row, like the executor.
    fn finish(&self) -> Vec<Row> {
        let mut out: Vec<Row> = self
            .groups
            .iter()
            .map(|(key, g)| {
                let mut row = key.clone();
                let mut si = 0;
                for spec in &self.aggs {
                    match spec {
                        AggSpec::CountStar => row.push(Value::Int(g.count)),
                        AggSpec::Sum { zero_default, .. } => {
                            row.push(g.sums[si].finish(*zero_default));
                            si += 1;
                        }
                    }
                }
                row
            })
            .collect();
        if out.is_empty() && self.n_keys == 0 {
            let empty = GroupState {
                count: 0,
                sums: vec![SumState::default(); self.n_sums()],
            };
            let mut row = Vec::new();
            let mut si = 0;
            for spec in &self.aggs {
                match spec {
                    AggSpec::CountStar => row.push(Value::Int(0)),
                    AggSpec::Sum { zero_default, .. } => {
                        row.push(empty.sums[si].finish(*zero_default));
                        si += 1;
                    }
                }
            }
            out.push(row);
        }
        out
    }
}

/// One registered view and its maintained state.
struct MaintainedView {
    id: ViewId,
    name: String,
    expr: SpjgExpr,
    strategy: MaintainStrategy,
    /// SPJ views: the compiled view plan, reused for the delta joins.
    prog: Option<PlanProgram>,
    /// Aggregate views: the counting rollup.
    agg: Option<AggCore>,
    /// The served contents (for aggregate views, the finished rows — kept
    /// current after every fold).
    rows: Vec<Row>,
    /// Recompute pending: a relevant write happened and the view has not
    /// been refreshed since.
    dirty: bool,
}

/// The maintenance driver: owns the base data and every registered view's
/// materialized state, and applies write rounds to both.
pub struct Maintainer {
    db: Database,
    views: Vec<MaintainedView>,
    scratch: ExecScratch,
}

impl Maintainer {
    /// Wrap a loaded database. Views are registered separately so their
    /// initial materialization sees the data.
    pub fn new(db: Database) -> Self {
        Maintainer {
            db,
            views: Vec::new(),
            scratch: ExecScratch::new(),
        }
    }

    /// The current base data (deltas applied so far included).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Materialize and register a view for maintenance under the id the
    /// matching engine knows it by. Returns the chosen strategy:
    /// incremental when every base table occurs once and (for aggregate
    /// views) every aggregate is `COUNT(*)` or an integer-typed `SUM`;
    /// recompute otherwise.
    pub fn register(&mut self, id: ViewId, def: &ViewDef) -> MaintainStrategy {
        let expr = def.expr.clone();
        let strategy = self.classify(&expr);
        let rows = execute_spjg(&self.db, &expr);
        let (prog, agg) = if strategy == MaintainStrategy::Incremental {
            if expr.is_aggregate() {
                let mut core_agg = build_agg_core(&self.db, &expr);
                let core_rows = execute_spjg(&self.db, &core_agg.core);
                core_agg.fold(&core_rows, 1);
                (None, Some(core_agg))
            } else {
                (Some(PlanProgram::compile(&self.db.catalog, &expr)), None)
            }
        } else {
            (None, None)
        };
        self.views.push(MaintainedView {
            id,
            name: def.name.clone(),
            expr,
            strategy,
            prog,
            agg,
            rows,
            dirty: false,
        });
        strategy
    }

    fn classify(&self, expr: &SpjgExpr) -> MaintainStrategy {
        let mut tables: Vec<TableId> = expr.tables.clone();
        tables.sort_unstable();
        let single_occurrence = tables.windows(2).all(|w| w[0] != w[1]);
        if !single_occurrence {
            return MaintainStrategy::Recompute;
        }
        if let OutputList::Aggregate { aggregates, .. } = &expr.output {
            for agg in aggregates {
                if let Some(arg) = agg.func.argument() {
                    let ty = arg.infer_type(&|c| expr.col_type(&self.db.catalog, c));
                    if ty != Some(ColumnType::Int) {
                        // Float sums accumulate order-dependently; an
                        // add-then-subtract round trip need not restore
                        // the recompute value, so only exact integer sums
                        // self-maintain.
                        return MaintainStrategy::Recompute;
                    }
                }
            }
        }
        MaintainStrategy::Incremental
    }

    /// The strategy a registered view runs under.
    pub fn strategy(&self, id: ViewId) -> Option<MaintainStrategy> {
        self.views.iter().find(|v| v.id == id).map(|v| v.strategy)
    }

    /// The maintained contents of a registered view (the rows a substitute
    /// scanning the view reads). `None` for unregistered ids.
    pub fn contents(&self, id: ViewId) -> Option<&[Row]> {
        self.views
            .iter()
            .find(|v| v.id == id)
            .map(|v| v.rows.as_slice())
    }

    /// Is the view waiting for a [`Maintainer::refresh`]?
    pub fn is_dirty(&self, id: ViewId) -> bool {
        self.views
            .iter()
            .find(|v| v.id == id)
            .is_some_and(|v| v.dirty)
    }

    /// Apply one write round: propagate the delta into every registered
    /// view that references the table (or mark it dirty), then apply it to
    /// the base table.
    pub fn apply(&mut self, delta: &TableDelta) -> DeltaReport {
        let mut report = DeltaReport::default();
        // The delta joins evaluate against the *current* base state with
        // only the written table overridden, so propagation runs before
        // the base apply. `swap_rows` lends the override to the database
        // and takes it back without copying.
        let mut views = std::mem::take(&mut self.views);
        for view in &mut views {
            if !view.expr.tables.contains(&delta.table) {
                continue;
            }
            if view.strategy == MaintainStrategy::Recompute || view.dirty {
                view.dirty = true;
                report.marked_dirty += 1;
                continue;
            }
            let minus = self.eval_delta(view, delta.table, &delta.deletes);
            let plus = self.eval_delta(view, delta.table, &delta.inserts);
            if let Some(agg) = &mut view.agg {
                agg.fold(&minus, -1);
                agg.fold(&plus, 1);
                view.rows = agg.finish();
            } else {
                bag_remove(&mut view.rows, &minus);
                view.rows.extend(plus);
            }
            report.maintained += 1;
        }
        self.views = views;
        report.rows_deleted = self.db.delete_rows(delta.table, &delta.deletes);
        self.db.insert_rows(delta.table, &delta.inserts);
        report
    }

    /// [`Maintainer::apply`] plus engine bookkeeping: records the write
    /// round ([`MatchingEngine::record_base_write`]) and restamps every
    /// view updated in place ([`MatchingEngine::mark_view_maintained`]),
    /// so freshness-aware matching sees exactly the views whose contents
    /// track the new data. Dirty views stay stale until
    /// [`Maintainer::refresh_with_engine`].
    pub fn apply_with_engine(
        &mut self,
        delta: &TableDelta,
        engine: &MatchingEngine,
    ) -> DeltaReport {
        engine.record_base_write(delta.table);
        let report = self.apply(delta);
        for view in &self.views {
            if view.expr.tables.contains(&delta.table) && !view.dirty {
                engine.mark_view_maintained(view.id);
            }
        }
        report
    }

    /// Evaluate the view's delta join: its plan (or SPJ core) with
    /// `table`'s rows replaced by `delta_rows`.
    fn eval_delta(
        &mut self,
        view: &MaintainedView,
        table: TableId,
        delta_rows: &[Row],
    ) -> Vec<Row> {
        if delta_rows.is_empty() {
            return Vec::new();
        }
        let mut override_rows: Vec<Row> = delta_rows.to_vec();
        self.db.swap_rows(table, &mut override_rows);
        let out = if let Some(agg) = &view.agg {
            let mut bag = RowBag::new();
            agg.prog.execute(&self.db, &mut self.scratch, &mut bag);
            bag.to_rows()
        } else if let Some(prog) = &view.prog {
            let mut bag = RowBag::new();
            prog.execute(&self.db, &mut self.scratch, &mut bag);
            bag.to_rows()
        } else {
            execute_spjg(&self.db, &view.expr)
        };
        self.db.swap_rows(table, &mut override_rows);
        out
    }

    /// Recompute a view from the base tables and clear its dirty flag.
    /// Returns `false` for unregistered ids.
    pub fn refresh(&mut self, id: ViewId) -> bool {
        let Some(i) = self.views.iter().position(|v| v.id == id) else {
            return false;
        };
        let mut view = self.views.swap_remove(i);
        view.rows = execute_spjg(&self.db, &view.expr);
        if let Some(agg) = &mut view.agg {
            agg.groups.clear();
            let core_rows = execute_spjg(&self.db, &agg.core);
            agg.fold(&core_rows, 1);
        }
        view.dirty = false;
        self.views.push(view);
        true
    }

    /// [`Maintainer::refresh`] plus a
    /// [`MatchingEngine::mark_view_maintained`] restamp.
    pub fn refresh_with_engine(&mut self, id: ViewId, engine: &MatchingEngine) -> bool {
        if !self.refresh(id) {
            return false;
        }
        engine.mark_view_maintained(id);
        true
    }

    /// Recompute every dirty view.
    pub fn refresh_all(&mut self) {
        let dirty: Vec<ViewId> = self
            .views
            .iter()
            .filter(|v| v.dirty)
            .map(|v| v.id)
            .collect();
        for id in dirty {
            self.refresh(id);
        }
    }

    /// The MV4xx state audit: every registered, non-dirty view's
    /// maintained contents must equal recompute-from-scratch as row bags
    /// (MV401 `maintained-drift`), and no aggregate rollup may hold a
    /// group at count ≤ 0 (MV403 `zombie-group`). Dirty views are exempt
    /// from MV401 — they are *declared* stale, not wrong.
    pub fn audit(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for view in &self.views {
            if let Some(agg) = &view.agg {
                for (key, g) in &agg.groups {
                    if g.count <= 0 {
                        out.push(
                            Diagnostic::new(
                                RuleId::ZombieGroup,
                                Severity::Error,
                                format!(
                                    "group {key:?} held at count {} after maintenance",
                                    g.count
                                ),
                            )
                            .with_view(&view.name),
                        );
                    }
                }
            }
            if view.dirty {
                continue;
            }
            let want = execute_spjg(&self.db, &view.expr);
            if let Some(diff) = bag_diff(&view.rows, &want) {
                out.push(
                    Diagnostic::new(
                        RuleId::MaintainedDrift,
                        Severity::Error,
                        format!("maintained contents differ from recompute: {diff}"),
                    )
                    .with_view(&view.name),
                );
            }
        }
        out
    }

    /// Corruption hook for the audit suite: drop one row from a view's
    /// maintained contents, simulating a skipped insert delta. Never call
    /// outside tests.
    #[doc(hidden)]
    pub fn corrupt_drop_row_for_audit(&mut self, id: ViewId) -> bool {
        let Some(view) = self.views.iter_mut().find(|v| v.id == id) else {
            return false;
        };
        if view.rows.is_empty() {
            return false;
        }
        view.rows.remove(0);
        true
    }

    /// Corruption hook for the audit suite: re-insert a group at count
    /// zero into an aggregate view's rollup (and its finished rows),
    /// simulating a counting bug that forgets to delete emptied groups.
    /// Never call outside tests.
    #[doc(hidden)]
    pub fn corrupt_zombie_group_for_audit(&mut self, id: ViewId, key: Vec<Value>) -> bool {
        let Some(view) = self.views.iter_mut().find(|v| v.id == id) else {
            return false;
        };
        let Some(agg) = &mut view.agg else {
            return false;
        };
        let n_sums = agg.n_sums();
        agg.groups.insert(
            key,
            GroupState {
                count: 0,
                sums: vec![SumState::default(); n_sums],
            },
        );
        view.rows = finish_with_zombies(agg);
        true
    }
}

/// Like [`AggCore::finish`] but keeping count-zero groups — only the
/// zombie corruption hook wants this, to make the forged group visible in
/// the served rows as well as the rollup.
fn finish_with_zombies(agg: &AggCore) -> Vec<Row> {
    let mut out = agg.finish();
    for (key, g) in &agg.groups {
        if g.count <= 0 {
            let mut row = key.clone();
            let mut si = 0;
            for spec in &agg.aggs {
                match spec {
                    AggSpec::CountStar => row.push(Value::Int(g.count)),
                    AggSpec::Sum { zero_default, .. } => {
                        row.push(g.sums[si].finish(*zero_default));
                        si += 1;
                    }
                }
            }
            out.push(row);
        }
    }
    out
}

/// Build the counting rollup for an aggregate view: the SPJ core projects
/// the group-by expressions, then one column per `SUM` argument.
fn build_agg_core(db: &Database, expr: &SpjgExpr) -> AggCore {
    let OutputList::Aggregate {
        group_by,
        aggregates,
    } = &expr.output
    else {
        unreachable!("agg core over an SPJ view");
    };
    let n_keys = group_by.len();
    let mut outputs: Vec<NamedExpr> = group_by.clone();
    let mut aggs = Vec::with_capacity(aggregates.len());
    for na in aggregates {
        match &na.func {
            AggFunc::CountStar => aggs.push(AggSpec::CountStar),
            AggFunc::Sum(arg) => {
                aggs.push(AggSpec::Sum {
                    slot: outputs.len(),
                    zero_default: false,
                });
                outputs.push(NamedExpr::new(arg.clone(), &na.name));
            }
            AggFunc::SumZero(arg) => {
                aggs.push(AggSpec::Sum {
                    slot: outputs.len(),
                    zero_default: true,
                });
                outputs.push(NamedExpr::new(arg.clone(), &na.name));
            }
        }
    }
    let core = SpjgExpr {
        tables: expr.tables.clone(),
        conjuncts: expr.conjuncts.clone(),
        output: OutputList::Spj(outputs),
    };
    let prog = PlanProgram::compile(&db.catalog, &core);
    AggCore {
        core,
        prog,
        n_keys,
        aggs,
        groups: HashMap::new(),
    }
}

/// Remove each row of `minus` from `rows` once, bag-style. Returns the
/// number actually removed (a shortfall means the delta join produced rows
/// the maintained bag did not hold — drift the audit will flag).
fn bag_remove(rows: &mut Vec<Row>, minus: &[Row]) -> usize {
    let mut pending: Vec<&Row> = minus.iter().collect();
    let before = rows.len();
    rows.retain(|r| {
        if let Some(pos) = pending.iter().position(|p| *p == r) {
            pending.swap_remove(pos);
            false
        } else {
            true
        }
    });
    before - rows.len()
}

/// The MV4xx serving audit: run every query through the engine and check
/// each substitute's freshness claim against the engine's epoch
/// bookkeeping and the maintainer's contents.
///
/// * A substitute stamped `Fresh` from a view whose data epochs trail the
///   current table epochs is MV402 `stale-serving` — the freshness gate
///   leaked a stale view.
/// * A `Fresh` substitute whose execution against the maintained contents
///   differs from the query against base data (row-bag comparison, the
///   `--exec-check` discipline) is also MV402: whatever the stamp says,
///   the rewrite served wrong rows.
/// * A view stamp *ahead* of a current table epoch is MV404
///   `stamp-regression` — stamps may only trail.
pub fn audit_serving(
    engine: &MatchingEngine,
    maintainer: &Maintainer,
    queries: &[SpjgExpr],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for view in &maintainer.views {
        if let Some(stamp) = engine.view_data_epochs(view.id) {
            for (t, stamped) in stamp {
                let cur = engine.data_epoch(t);
                if stamped > cur {
                    out.push(
                        Diagnostic::new(
                            RuleId::StampRegression,
                            Severity::Error,
                            format!(
                                "data-epoch stamp {stamped} for table {} leads current epoch {cur}",
                                t.0
                            ),
                        )
                        .with_view(&view.name),
                    );
                }
            }
        }
    }
    for (qi, query) in queries.iter().enumerate() {
        let want = execute_spjg(maintainer.db(), query);
        for (id, sub) in engine.find_substitutes(query) {
            if !sub.freshness.is_fresh() {
                continue;
            }
            let label = || format!("q{qi}");
            match engine.view_staleness(id) {
                Some(0) => {}
                lag => {
                    out.push(
                        Diagnostic::new(
                            RuleId::StaleServing,
                            Severity::Error,
                            format!(
                                "substitute stamped Fresh from view {} at staleness {lag:?}",
                                id.0
                            ),
                        )
                        .with_query(label()),
                    );
                }
            }
            let Some(rows) = maintainer.contents(id) else {
                continue;
            };
            let got = execute_substitute_with(maintainer.db(), rows, &sub);
            if let Some(diff) = bag_diff(&got, &want) {
                out.push(
                    Diagnostic::new(
                        RuleId::StaleServing,
                        Severity::Error,
                        format!("Fresh substitute served wrong rows: {diff}"),
                    )
                    .with_query(label()),
                );
            }
        }
    }
    out
}
