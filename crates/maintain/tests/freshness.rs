//! Acceptance: under a write workload, `StrictFresh` matching never
//! serves a substitute whose data epochs trail the current table epochs —
//! including the window *between* a base write and its maintenance round,
//! and for recompute-fallback views that lag until refreshed. The
//! bounded and stale-tolerant policies relax admission monotonically and
//! always stamp honestly.

use mv_catalog::schema::TableBuilder;
use mv_catalog::{Catalog, ColumnType, TableId, Value};
use mv_core::{FreshnessPolicy, MatchConfig, MatchingEngine};
use mv_data::{Database, Row};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_maintain::{audit_serving, MaintainStrategy, Maintainer, TableDelta};
use mv_plan::{NamedExpr, SpjgExpr, ViewDef, ViewId};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

fn schema() -> (Catalog, TableId) {
    let mut cat = Catalog::new();
    let r = cat.add_table(
        TableBuilder::new("r")
            .col("pk", ColumnType::Int)
            .nullable_col("x", ColumnType::Int)
            .primary_key(&["pk"])
            .build(),
    );
    (cat, r)
}

fn setup(policy: FreshnessPolicy) -> (MatchingEngine, Maintainer, SpjgExpr, TableId) {
    let (cat, r) = schema();
    let mut db = Database::new(cat.clone());
    db.load(
        r,
        (0..6)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
            .collect::<Vec<Row>>(),
    );
    let engine = MatchingEngine::new(
        cat,
        MatchConfig {
            freshness: policy,
            ..MatchConfig::default()
        },
    );
    let mut maintainer = Maintainer::new(db);
    let expr = SpjgExpr::spj(
        vec![r],
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(0i64)),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "pk"),
            NamedExpr::new(S::col(cr(0, 1)), "x"),
        ],
    );
    let id = engine
        .add_view(ViewDef::new("v_r", expr.clone()))
        .expect("view registers");
    let strategy = maintainer.register(id, &ViewDef::new("v_r", expr.clone()));
    assert_eq!(strategy, MaintainStrategy::Incremental);
    (engine, maintainer, expr, r)
}

fn delta(r: TableId, round: i64) -> TableDelta {
    TableDelta::insert(r, vec![vec![Value::Int(100 + round), Value::Int(7)]])
}

#[test]
fn strict_fresh_never_serves_trailing_epochs() {
    let (engine, mut maintainer, query, r) = setup(FreshnessPolicy::StrictFresh);
    for round in 0..5 {
        // Window 1: write recorded, maintenance not yet run. StrictFresh
        // must refuse the view outright.
        engine.record_base_write(r);
        maintainer.apply(&delta(r, round));
        assert_eq!(engine.view_staleness(ViewId(0)), Some(1));
        assert!(
            engine.find_substitutes(&query).is_empty(),
            "round {round}: StrictFresh served a view with trailing epochs"
        );

        // Window 2: maintenance caught up and restamped; serving resumes
        // with a hard Fresh guarantee verified end-to-end.
        engine.mark_view_maintained(ViewId(0));
        let subs = engine.find_substitutes(&query);
        assert_eq!(subs.len(), 1, "round {round}");
        assert!(subs[0].1.freshness.is_fresh());
        assert_eq!(engine.view_staleness(subs[0].0), Some(0));
        let diags = audit_serving(&engine, &maintainer, std::slice::from_ref(&query));
        assert!(diags.is_empty(), "round {round}: {diags:?}");
    }
}

#[test]
fn bounded_staleness_admits_up_to_its_bound() {
    let (engine, mut maintainer, query, r) = setup(FreshnessPolicy::BoundedStaleness(2));
    // Two unmaintained writes: lag 2, still admissible — stamped Stale.
    for round in 0..2 {
        engine.record_base_write(r);
        maintainer.apply(&delta(r, round));
    }
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    assert_eq!(subs[0].1.freshness.lag(), 2);
    // A third write exceeds the bound.
    engine.record_base_write(r);
    maintainer.apply(&delta(r, 2));
    assert!(engine.find_substitutes(&query).is_empty());
    // Maintenance restores admission at lag zero.
    engine.mark_view_maintained(ViewId(0));
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    assert!(subs[0].1.freshness.is_fresh());
}

#[test]
fn stale_ok_always_serves_with_honest_lag() {
    let (engine, mut maintainer, query, r) = setup(FreshnessPolicy::StaleOk);
    for round in 0..4 {
        engine.record_base_write(r);
        maintainer.apply(&delta(r, round));
        let subs = engine.find_substitutes(&query);
        assert_eq!(subs.len(), 1, "round {round}");
        assert_eq!(subs[0].1.freshness.lag(), round as u64 + 1);
    }
}
