//! Maintenance property: under an arbitrary stream of insert/delete
//! deltas against random base tables, every registered view's maintained
//! contents equal recompute-from-scratch as row bags after *every* step —
//! for SPJ and aggregate views on the incremental path, and for a
//! self-join view on the recompute-fallback path (refreshed each step).

use mv_catalog::schema::TableBuilder;
use mv_catalog::{Catalog, ColumnType, TableId, Value};
use mv_data::{Database, Row};
use mv_exec::{bag_diff, execute_spjg};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_maintain::{MaintainStrategy, Maintainer, TableDelta};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, SpjgExpr, ViewDef, ViewId};
use proptest::prelude::*;

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

/// R(pk, g, x) and S(fk, y): a keyed fact table with a nullable group and
/// measure, and a narrow table joining to it.
fn schema() -> (Catalog, TableId, TableId) {
    let mut cat = Catalog::new();
    let r = cat.add_table(
        TableBuilder::new("r")
            .col("pk", ColumnType::Int)
            .nullable_col("g", ColumnType::Int)
            .nullable_col("x", ColumnType::Int)
            .primary_key(&["pk"])
            .build(),
    );
    let s = cat.add_table(
        TableBuilder::new("s")
            .nullable_col("fk", ColumnType::Int)
            .col("y", ColumnType::Int)
            .build(),
    );
    (cat, r, s)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A row for `r`: fresh pk from a counter, small group domain (with
/// NULLs), small measure domain (with NULLs) so groups collide, empty and
/// refill.
fn r_row(seed: &mut u64, next_pk: &mut i64) -> Row {
    let pk = *next_pk;
    *next_pk += 1;
    let g = match splitmix64(seed) % 4 {
        0 => Value::Null,
        v => Value::Int(v as i64),
    };
    let x = match splitmix64(seed) % 5 {
        0 => Value::Null,
        v => Value::Int(v as i64 * 10),
    };
    vec![Value::Int(pk), g, x]
}

fn s_row(seed: &mut u64) -> Row {
    let fk = match splitmix64(seed) % 6 {
        0 => Value::Null,
        v => Value::Int(v as i64),
    };
    vec![fk, Value::Int((splitmix64(seed) % 7) as i64)]
}

struct Fixture {
    maintainer: Maintainer,
    views: Vec<(ViewId, SpjgExpr)>,
}

fn fixture(seed: u64) -> (Fixture, TableId, TableId) {
    let (cat, r, s) = schema();
    let mut db = Database::new(cat);
    let mut st = seed;
    let mut next_pk = 0i64;
    let r_rows: Vec<Row> = (0..6).map(|_| r_row(&mut st, &mut next_pk)).collect();
    let s_rows: Vec<Row> = (0..6).map(|_| s_row(&mut st)).collect();
    db.load(r, r_rows);
    db.load(s, s_rows);
    let mut maintainer = Maintainer::new(db);

    // SPJ join with a compensatable filter.
    let spj = SpjgExpr::spj(
        vec![r, s],
        BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::cmp(S::col(cr(0, 2)), CmpOp::Lt, S::lit(35i64)),
        ]),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "pk"),
            NamedExpr::new(S::col(cr(0, 1)), "g"),
            NamedExpr::new(S::col(cr(1, 1)), "y"),
        ],
    );
    // Grouped aggregate with an integer sum (all-NULL groups, emptied
    // groups and the NULL-sum rule are all reachable from the domains).
    let agg = SpjgExpr::aggregate(
        vec![r],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "g")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(S::col(cr(0, 2))), "sum_x"),
        ],
    );
    // Scalar aggregate: the one-row-over-empty-input rule.
    let scalar = SpjgExpr::aggregate(
        vec![s],
        BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Ge, S::lit(2i64)),
        vec![],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(S::col(cr(0, 1))), "sum_y"),
        ],
    );
    // Self-join: multi-occurrence, so the recompute fallback.
    let selfjoin = SpjgExpr::spj(
        vec![r, r],
        BoolExpr::col_eq(cr(0, 1), cr(1, 1)),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "pk_a"),
            NamedExpr::new(S::col(cr(1, 0)), "pk_b"),
        ],
    );
    let mut views = Vec::new();
    for (i, (name, expr, want_strategy)) in [
        ("spj_join", spj, MaintainStrategy::Incremental),
        ("agg_by_g", agg, MaintainStrategy::Incremental),
        ("scalar_s", scalar, MaintainStrategy::Incremental),
        ("self_join", selfjoin, MaintainStrategy::Recompute),
    ]
    .into_iter()
    .enumerate()
    {
        let id = ViewId(i as u32);
        let def = ViewDef::new(name, expr.clone());
        let got = maintainer.register(id, &def);
        assert_eq!(got, want_strategy, "strategy for {name}");
        views.push((id, expr));
    }
    (Fixture { maintainer, views }, r, s)
}

/// Check every view against recompute; recompute-strategy views are
/// refreshed first (the contract is refresh-then-read, not free currency).
fn check_all(f: &mut Fixture, step: usize) {
    let dirty: Vec<ViewId> = f
        .views
        .iter()
        .map(|(id, _)| *id)
        .filter(|&id| f.maintainer.is_dirty(id))
        .collect();
    for id in dirty {
        assert!(f.maintainer.refresh(id));
    }
    for (id, expr) in &f.views {
        let want = execute_spjg(f.maintainer.db(), expr);
        let got = f.maintainer.contents(*id).expect("registered view");
        assert!(
            mv_exec::bag_eq(got, &want),
            "step {}: view {} drifted: {:?}",
            step,
            id.0,
            bag_diff(got, &want)
        );
    }
    // The built-in audit must agree that nothing drifted.
    let diags = f.maintainer.audit();
    assert!(diags.is_empty(), "step {step}: audit found {diags:?}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// `steps` drives the delta stream: (table pick, op pick, seed).
    /// Inserts draw fresh rows from the row generators; deletes remove
    /// existing rows picked by index (bag-correct deltas); mixed does
    /// both in one round.
    #[test]
    fn maintained_contents_equal_recompute_after_every_step(
        steps in prop::collection::vec((0usize..2, 0usize..3, 0u64..u64::MAX), 1..18),
        seed in 0u64..u64::MAX,
    ) {
        let (mut f, r, s) = fixture(seed);
        let mut next_pk = 1000i64;
        check_all(&mut f, 0);
        for (i, &(tsel, op, sd)) in steps.iter().enumerate() {
            let table = if tsel == 0 { r } else { s };
            let mut st = sd;
            let gen_rows = |st: &mut u64, next_pk: &mut i64, n: usize| -> Vec<Row> {
                (0..n)
                    .map(|_| if tsel == 0 { r_row(st, next_pk) } else { s_row(st) })
                    .collect()
            };
            let existing = f.maintainer.db().rows(table).to_vec();
            let pick_deletes = |st: &mut u64, n: usize| -> Vec<Row> {
                if existing.is_empty() {
                    return Vec::new();
                }
                (0..n)
                    .map(|_| existing[(splitmix64(st) % existing.len() as u64) as usize].clone())
                    .collect()
            };
            let n = 1 + (splitmix64(&mut st) % 3) as usize;
            let delta = match op {
                0 => TableDelta::insert(table, gen_rows(&mut st, &mut next_pk, n)),
                1 => TableDelta::delete(table, dedup_bag(pick_deletes(&mut st, n))),
                _ => TableDelta {
                    table,
                    inserts: gen_rows(&mut st, &mut next_pk, n),
                    deletes: dedup_bag(pick_deletes(&mut st, n)),
                },
            };
            let expected_deletes = delta.deletes.len();
            let report = f.maintainer.apply(&delta);
            // Deletes were drawn from (deduplicated against) the live
            // table, so every one must land.
            prop_assert_eq!(report.rows_deleted, expected_deletes, "step {}", i);
            check_all(&mut f, i + 1);
        }
    }
}

/// Picking deletes by random index can name the same stored row twice
/// while the table holds only one copy; collapse such picks so the delta
/// is satisfiable by construction. (Distinct stored duplicates remain
/// deletable — the picks are compared as rows, and `r` rows carry unique
/// pks anyway.)
fn dedup_bag(mut rows: Vec<Row>) -> Vec<Row> {
    let mut out: Vec<Row> = Vec::new();
    while let Some(r) = rows.pop() {
        if !out.contains(&r) {
            out.push(r);
        }
    }
    out
}
