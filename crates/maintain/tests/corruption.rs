//! MV4xx corruption suite: seed each maintenance bug the rule family
//! describes and pin it to its rule — wrong-delta drift to MV401,
//! fresh-claimed wrong serving to MV402, an undeleted emptied group to
//! MV403, a forged data-epoch stamp to MV404. A clean engine+maintainer
//! pair must stay green under both audits.

use mv_catalog::schema::TableBuilder;
use mv_catalog::{Catalog, ColumnType, TableId, Value};
use mv_core::{MatchConfig, MatchingEngine};
use mv_data::{Database, Row};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_maintain::{audit_serving, Maintainer, TableDelta};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, SpjgExpr, ViewDef, ViewId};
use mv_verify::RuleId;

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

fn schema() -> (Catalog, TableId) {
    let mut cat = Catalog::new();
    let r = cat.add_table(
        TableBuilder::new("r")
            .col("pk", ColumnType::Int)
            .nullable_col("g", ColumnType::Int)
            .nullable_col("x", ColumnType::Int)
            .primary_key(&["pk"])
            .build(),
    );
    (cat, r)
}

fn r_rows() -> Vec<Row> {
    (0..8)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 3),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Int(i * 10)
                },
            ]
        })
        .collect()
}

/// Engine + maintainer over the same catalog, with an SPJ view and a
/// grouped aggregate view registered in both under the same ids.
fn setup() -> (MatchingEngine, Maintainer, Vec<SpjgExpr>, TableId) {
    let (cat, r) = schema();
    let mut db = Database::new(cat.clone());
    db.load(r, r_rows());
    let engine = MatchingEngine::new(cat, MatchConfig::default());
    let mut maintainer = Maintainer::new(db);
    let spj = SpjgExpr::spj(
        vec![r],
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(0i64)),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "pk"),
            NamedExpr::new(S::col(cr(0, 2)), "x"),
        ],
    );
    let agg = SpjgExpr::aggregate(
        vec![r],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "g")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(S::col(cr(0, 2))), "sum_x"),
        ],
    );
    let mut queries = Vec::new();
    for (name, expr) in [("spj_r", spj), ("agg_by_g", agg)] {
        let id = engine
            .add_view(ViewDef::new(name, expr.clone()))
            .expect("view registers");
        maintainer.register(id, &ViewDef::new(name, expr.clone()));
        queries.push(expr);
    }
    (engine, maintainer, queries, r)
}

fn codes(diags: &[mv_verify::Diagnostic]) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = diags.iter().map(|d| d.rule.code()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[test]
fn clean_pair_stays_green_under_write_workload() {
    let (engine, mut maintainer, queries, r) = setup();
    for round in 0..4i64 {
        let delta = TableDelta {
            table: r,
            inserts: vec![vec![
                Value::Int(100 + round),
                Value::Int(round % 3),
                Value::Int(7),
            ]],
            deletes: vec![maintainer.db().rows(r)[0].clone()],
        };
        maintainer.apply_with_engine(&delta, &engine);
        assert!(maintainer.audit().is_empty(), "round {round}: state audit");
        let diags = audit_serving(&engine, &maintainer, &queries);
        assert!(diags.is_empty(), "round {round}: serving audit {diags:?}");
    }
}

#[test]
fn dropped_delta_pins_mv401_and_mv402() {
    let (engine, mut maintainer, queries, _) = setup();
    assert!(maintainer.corrupt_drop_row_for_audit(ViewId(0)));
    // State audit: contents no longer equal recompute.
    let diags = maintainer.audit();
    assert_eq!(codes(&diags), vec![RuleId::MaintainedDrift.code()]);
    assert_eq!(RuleId::MaintainedDrift.code(), "MV401");
    // Serving audit: the engine (no writes recorded) rightly claims
    // Fresh, but executing the substitute against the corrupted contents
    // returns wrong rows.
    let diags = audit_serving(&engine, &maintainer, &queries);
    assert!(
        codes(&diags).contains(&RuleId::StaleServing.code()),
        "{diags:?}"
    );
    assert_eq!(RuleId::StaleServing.code(), "MV402");
}

#[test]
fn zombie_group_pins_mv403() {
    let (_, mut maintainer, _, _) = setup();
    // An emptied group the counting rollup forgot to delete: key g=99
    // never existed, count 0.
    assert!(maintainer.corrupt_zombie_group_for_audit(ViewId(1), vec![Value::Int(99)]));
    let diags = maintainer.audit();
    let found = codes(&diags);
    assert!(found.contains(&RuleId::ZombieGroup.code()), "{diags:?}");
    assert_eq!(RuleId::ZombieGroup.code(), "MV403");
    // The phantom group also shows up in the served rows, so drift fires
    // too — the two rules report different layers of the same bug.
    assert!(found.contains(&RuleId::MaintainedDrift.code()), "{diags:?}");
}

#[test]
fn forged_stamp_pins_mv404() {
    let (engine, maintainer, queries, _) = setup();
    assert!(engine.corrupt_view_stamp_for_audit(ViewId(0), 2));
    let diags = audit_serving(&engine, &maintainer, &queries);
    assert_eq!(codes(&diags), vec![RuleId::StampRegression.code()]);
    assert_eq!(RuleId::StampRegression.code(), "MV404");
}

#[test]
fn skipped_maintenance_is_declared_stale_not_wrong() {
    let (engine, mut maintainer, queries, r) = setup();
    // Record the write in the engine but leave one view unmaintained by
    // forcing it dirty: a *declared* stale view is exempt from MV401 and
    // never claims Fresh, so both audits stay green.
    engine.record_base_write(r);
    let delta = TableDelta::insert(r, vec![vec![Value::Int(500), Value::Int(0), Value::Int(1)]]);
    maintainer.apply(&delta);
    // Only restamp view 0; view 1 stays stale in the engine.
    engine.mark_view_maintained(ViewId(0));
    assert_eq!(engine.view_staleness(ViewId(1)), Some(1));
    assert!(maintainer.audit().is_empty());
    let diags = audit_serving(&engine, &maintainer, &queries);
    assert!(diags.is_empty(), "{diags:?}");
    // The stale view still serves under the default StaleOk policy —
    // with an honest Stale stamp.
    let subs = engine.find_substitutes(&queries[1]);
    assert_eq!(subs.len(), 1);
    assert_eq!(subs[0].1.freshness.lag(), 1);
}
