//! SQL front end for the indexed-view subset.
//!
//! Parses exactly the SQL class the paper supports (section 2): single
//! SELECT blocks with inner joins expressed in the FROM/WHERE style,
//! selections (comparisons, BETWEEN, LIKE, IS NULL, AND/OR/NOT), an
//! optional GROUP BY, `SUM`/`COUNT_BIG(*)`/`COUNT(*)` aggregates, and
//! `CREATE VIEW ... WITH SCHEMABINDING AS SELECT ...`. No subqueries, no
//! derived tables, no outer joins — those are outside the indexable-view
//! class.
//!
//! ```
//! use mv_catalog::tpch::tpch_catalog;
//! use mv_sql::parse_query;
//!
//! let (catalog, _) = tpch_catalog();
//! let q = parse_query(
//!     "SELECT l_orderkey, l_quantity FROM lineitem, orders \
//!      WHERE l_orderkey = o_orderkey AND o_custkey BETWEEN 50 AND 500",
//!     &catalog,
//! )
//! .unwrap();
//! assert_eq!(q.tables.len(), 2);
//! assert_eq!(q.conjuncts.len(), 3); // equijoin + two range bounds
//! ```

pub mod binder;
pub mod lexer;
pub mod parser;

use mv_catalog::Catalog;
use mv_plan::{SpjgExpr, ViewDef};
use std::fmt;

/// A parse or binding error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl SqlError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        SqlError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SqlError {}

/// A parsed statement.
#[derive(Debug, Clone)]
pub enum Statement {
    /// A SELECT query.
    Select(SpjgExpr),
    /// A CREATE VIEW definition.
    CreateView(ViewDef),
}

/// Parse any supported statement.
pub fn parse_statement(sql: &str, catalog: &Catalog) -> Result<Statement, SqlError> {
    let tokens = lexer::tokenize(sql)?;
    let ast = parser::parse(&tokens)?;
    binder::bind(ast, catalog)
}

/// Parse a SELECT query into an SPJG block.
pub fn parse_query(sql: &str, catalog: &Catalog) -> Result<SpjgExpr, SqlError> {
    match parse_statement(sql, catalog)? {
        Statement::Select(e) => Ok(e),
        Statement::CreateView(_) => Err(SqlError::new("expected a SELECT statement", 0)),
    }
}

/// Parse a CREATE VIEW statement into a view definition.
pub fn parse_view(sql: &str, catalog: &Catalog) -> Result<ViewDef, SqlError> {
    match parse_statement(sql, catalog)? {
        Statement::CreateView(v) => Ok(v),
        Statement::Select(_) => Err(SqlError::new("expected a CREATE VIEW statement", 0)),
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;
    use mv_catalog::tpch::tpch_catalog;

    #[test]
    fn errors_carry_offsets_and_render() {
        let (cat, _) = tpch_catalog();
        let err = parse_query("SELECT l_orderkey FROM lineitem WHERE @", &cat).unwrap_err();
        assert!(err.offset > 0);
        let text = err.to_string();
        assert!(text.contains("offset"), "{text}");
        // The error type plays well with `?` in user code.
        fn fallible(cat: &mv_catalog::Catalog) -> Result<(), Box<dyn std::error::Error>> {
            parse_query("nope", cat)?;
            Ok(())
        }
        assert!(fallible(&cat).is_err());
    }

    #[test]
    fn statement_dispatch() {
        let (cat, _) = tpch_catalog();
        assert!(matches!(
            parse_statement("SELECT r_name FROM region", &cat),
            Ok(Statement::Select(_))
        ));
        assert!(matches!(
            parse_statement("CREATE VIEW v AS SELECT r_name FROM region", &cat),
            Ok(Statement::CreateView(_))
        ));
        // Wrong accessor for the statement kind.
        assert!(parse_view("SELECT r_name FROM region", &cat).is_err());
        assert!(parse_query("CREATE VIEW v AS SELECT r_name FROM region", &cat).is_err());
    }
}
