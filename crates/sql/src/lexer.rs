//! Tokenizer for the SQL subset.

use crate::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (stored lowercased; originals are
    /// case-insensitive in SQL).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation and operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
    Ne,
    Semicolon,
}

/// A token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token start.
    pub offset: usize,
}

/// Tokenize the input.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    token: Token::Star,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    token: Token::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                out.push(Spanned {
                    token: Token::Minus,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                out.push(Spanned {
                    token: Token::Slash,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                out.push(Spanned {
                    token: Token::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Eq,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        token: Token::Le,
                        offset: start,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(Spanned {
                    token: Token::Ne,
                    offset: start,
                });
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::new("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len()
                    && (bytes[end].is_ascii_digit()
                        || (bytes[end] == b'.'
                            && end + 1 < bytes.len()
                            && bytes[end + 1].is_ascii_digit()))
                {
                    if bytes[end] == b'.' {
                        is_float = true;
                    }
                    end += 1;
                }
                let text = &input[i..end];
                let token = if is_float {
                    Token::Float(
                        text.parse()
                            .map_err(|_| SqlError::new(format!("invalid number {text}"), start))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| SqlError::new(format!("invalid number {text}"), start))?,
                    )
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(input[i..end].to_ascii_lowercase()),
                    offset: start,
                });
                i = end;
            }
            other => {
                return Err(SqlError::new(
                    format!("unexpected character {other:?}"),
                    start,
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT a, b FROM t WHERE x <= 10"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("a".into()),
                Token::Comma,
                Token::Ident("b".into()),
                Token::Ident("from".into()),
                Token::Ident("t".into()),
                Token::Ident("where".into()),
                Token::Ident("x".into()),
                Token::Le,
                Token::Int(10),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("'it''s' '%steel%'"),
            vec![Token::Str("it's".into()), Token::Str("%steel%".into())]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42 3.5"), vec![Token::Int(42), Token::Float(3.5)]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = <> !="),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a -- comment here\n b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn qualified_names() {
        assert_eq!(
            toks("dbo.lineitem"),
            vec![
                Token::Ident("dbo".into()),
                Token::Dot,
                Token::Ident("lineitem".into())
            ]
        );
    }
}
