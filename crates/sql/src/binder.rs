//! Name resolution: AST → catalog-resolved SPJG blocks.

use crate::parser::{AstAgg, AstBool, AstScalar, AstSelect, AstStatement, SelectItem};
use crate::{SqlError, Statement};
use mv_catalog::{types::parse_date, Catalog, TableId, Value};
use mv_expr::{BoolExpr, ColRef, OccId, ScalarExpr};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, SpjgExpr, ViewDef};

/// One FROM entry during binding.
struct FromEntry {
    occ: OccId,
    table: TableId,
    /// Name this occurrence answers to (alias, or table name).
    label: String,
    /// Whether the label is an explicit alias (qualifies exclusively).
    aliased: bool,
}

struct Binder<'a> {
    catalog: &'a Catalog,
    from: Vec<FromEntry>,
}

/// Bind a statement against the catalog.
pub fn bind(ast: AstStatement, catalog: &Catalog) -> Result<Statement, SqlError> {
    match ast {
        AstStatement::Select(s) => Ok(Statement::Select(bind_select(s, catalog)?)),
        AstStatement::CreateView { name, select } => {
            let expr = bind_select(select, catalog)?;
            Ok(Statement::CreateView(ViewDef::new(name, expr)))
        }
    }
}

fn bind_select(select: AstSelect, catalog: &Catalog) -> Result<SpjgExpr, SqlError> {
    let mut from = Vec::new();
    for (i, tref) in select.from.iter().enumerate() {
        let table = catalog
            .table_by_name(&tref.name)
            .ok_or_else(|| SqlError::new(format!("unknown table {}", tref.name), 0))?;
        from.push(FromEntry {
            occ: OccId(i as u32),
            table,
            label: tref.alias.clone().unwrap_or_else(|| tref.name.clone()),
            aliased: tref.alias.is_some(),
        });
    }
    // Duplicate labels are only a problem when referenced; but two
    // unaliased occurrences of one table can never be addressed.
    for (i, a) in from.iter().enumerate() {
        for b in &from[i + 1..] {
            if a.label == b.label {
                return Err(SqlError::new(
                    format!("duplicate table label {} — alias repeated tables", a.label),
                    0,
                ));
            }
        }
    }
    let binder = Binder { catalog, from };

    let predicate = match select.where_clause {
        Some(w) => binder.bind_bool(&w)?,
        None => BoolExpr::Literal(true),
    };

    let has_agg = select
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Agg { .. }));
    let tables: Vec<TableId> = binder.from.iter().map(|f| f.table).collect();

    if !has_agg && select.group_by.is_empty() {
        // Plain SPJ projection.
        let mut outputs = Vec::new();
        for item in &select.items {
            let SelectItem::Scalar { expr, alias } = item else {
                unreachable!()
            };
            let bound = binder.bind_scalar(expr)?;
            let name = binder.output_name(expr, alias)?;
            outputs.push(NamedExpr::new(bound, name));
        }
        return Ok(SpjgExpr::spj(tables, predicate, outputs));
    }

    // Aggregation block. The select list must be the grouping expressions
    // (in order) followed by the aggregates, mirroring the output shape of
    // indexed views (section 2: grouping columns must be output columns).
    let bound_gb: Vec<ScalarExpr> = select
        .group_by
        .iter()
        .map(|g| binder.bind_scalar(g))
        .collect::<Result<_, _>>()?;
    let mut group_by = Vec::new();
    let mut aggregates = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Scalar { expr, alias } => {
                if !aggregates.is_empty() {
                    return Err(SqlError::new(
                        "grouping columns must precede aggregates in the select list",
                        0,
                    ));
                }
                let bound = binder.bind_scalar(expr)?;
                if !bound_gb.contains(&bound) {
                    return Err(SqlError::new(
                        format!("select item {expr:?} is not in the GROUP BY list"),
                        0,
                    ));
                }
                let name = binder.output_name(expr, alias)?;
                group_by.push(NamedExpr::new(bound, name));
            }
            SelectItem::Agg { agg, alias } => {
                let func = match agg {
                    AstAgg::CountStar => AggFunc::CountStar,
                    AstAgg::Sum(e) => AggFunc::Sum(binder.bind_scalar(e)?),
                    AstAgg::Avg(_) => {
                        return Err(SqlError::new(
                            "AVG is not supported: select SUM(e) and COUNT_BIG(*) and divide \
                             after aggregation (the paper's AVG = SUM/COUNT rewrite)",
                            0,
                        ))
                    }
                };
                let name = alias
                    .clone()
                    .ok_or_else(|| SqlError::new("aggregate outputs must be named with AS", 0))?;
                aggregates.push(NamedAgg::new(func, name));
            }
        }
    }
    // Every GROUP BY expression must be selected (it is the key).
    for (g, bound) in select.group_by.iter().zip(&bound_gb) {
        if !group_by.iter().any(|ne| ne.expr == *bound) {
            return Err(SqlError::new(
                format!("GROUP BY expression {g:?} must appear in the select list"),
                0,
            ));
        }
    }
    Ok(SpjgExpr::aggregate(tables, predicate, group_by, aggregates))
}

impl<'a> Binder<'a> {
    /// Default output name: the column name for bare columns; expressions
    /// require an alias (the paper: "output columns defined by arithmetic
    /// or other expressions must be assigned names").
    fn output_name(&self, expr: &AstScalar, alias: &Option<String>) -> Result<String, SqlError> {
        if let Some(a) = alias {
            return Ok(a.clone());
        }
        match expr {
            AstScalar::Column { name, .. } => Ok(name.clone()),
            _ => Err(SqlError::new(
                "expression outputs must be assigned a name with AS",
                0,
            )),
        }
    }

    fn resolve_column(&self, qualifier: &Option<String>, name: &str) -> Result<ColRef, SqlError> {
        match qualifier {
            Some(q) => {
                let entry = self
                    .from
                    .iter()
                    .find(|f| {
                        f.label == *q || (!f.aliased && self.catalog.table(f.table).name == *q)
                    })
                    .ok_or_else(|| SqlError::new(format!("unknown table or alias {q}"), 0))?;
                let (col, _) = self
                    .catalog
                    .table(entry.table)
                    .column_by_name(name)
                    .ok_or_else(|| SqlError::new(format!("unknown column {q}.{name}"), 0))?;
                Ok(ColRef {
                    occ: entry.occ,
                    col,
                })
            }
            None => {
                let mut found: Option<ColRef> = None;
                for entry in &self.from {
                    if let Some((col, _)) = self.catalog.table(entry.table).column_by_name(name) {
                        if found.is_some() {
                            return Err(SqlError::new(format!("ambiguous column {name}"), 0));
                        }
                        found = Some(ColRef {
                            occ: entry.occ,
                            col,
                        });
                    }
                }
                found.ok_or_else(|| SqlError::new(format!("unknown column {name}"), 0))
            }
        }
    }

    fn bind_scalar(&self, e: &AstScalar) -> Result<ScalarExpr, SqlError> {
        Ok(match e {
            AstScalar::Column { qualifier, name } => {
                ScalarExpr::Column(self.resolve_column(qualifier, name)?)
            }
            AstScalar::Int(v) => ScalarExpr::Literal(Value::Int(*v)),
            AstScalar::Float(v) => ScalarExpr::Literal(Value::Float(*v)),
            AstScalar::Str(s) => ScalarExpr::Literal(Value::from(s.as_str())),
            AstScalar::DateLit(d) => {
                let days =
                    parse_date(d).ok_or_else(|| SqlError::new(format!("invalid date {d}"), 0))?;
                ScalarExpr::Literal(Value::Date(days))
            }
            AstScalar::Binary { op, left, right } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(self.bind_scalar(left)?),
                right: Box::new(self.bind_scalar(right)?),
            },
            AstScalar::Neg(inner) => match self.bind_scalar(inner)? {
                // Fold negation of literals so `-5` classifies as a range
                // bound, not a residual expression.
                ScalarExpr::Literal(Value::Int(v)) => ScalarExpr::Literal(Value::Int(-v)),
                ScalarExpr::Literal(Value::Float(v)) => ScalarExpr::Literal(Value::Float(-v)),
                other => ScalarExpr::Literal(Value::Int(0)).binary(mv_expr::BinOp::Sub, other),
            },
        })
    }

    fn bind_bool(&self, e: &AstBool) -> Result<BoolExpr, SqlError> {
        Ok(match e {
            AstBool::And(parts) => BoolExpr::and(
                parts
                    .iter()
                    .map(|p| self.bind_bool(p))
                    .collect::<Result<_, _>>()?,
            ),
            AstBool::Or(parts) => BoolExpr::or(
                parts
                    .iter()
                    .map(|p| self.bind_bool(p))
                    .collect::<Result<_, _>>()?,
            ),
            AstBool::Not(inner) => BoolExpr::Not(Box::new(self.bind_bool(inner)?)),
            AstBool::Cmp { op, left, right } => BoolExpr::Compare {
                op: *op,
                left: self.bind_scalar(left)?,
                right: self.bind_scalar(right)?,
            },
            AstBool::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let e = self.bind_scalar(expr)?;
                let lo = self.bind_scalar(lo)?;
                let hi = self.bind_scalar(hi)?;
                let between = BoolExpr::and(vec![
                    BoolExpr::cmp(e.clone(), mv_expr::CmpOp::Ge, lo),
                    BoolExpr::cmp(e, mv_expr::CmpOp::Le, hi),
                ]);
                if *negated {
                    BoolExpr::Not(Box::new(between))
                } else {
                    between
                }
            }
            AstBool::Like {
                expr,
                pattern,
                negated,
            } => BoolExpr::Like {
                expr: self.bind_scalar(expr)?,
                pattern: pattern.clone(),
                negated: *negated,
            },
            AstBool::IsNull { expr, negated } => BoolExpr::IsNull {
                expr: self.bind_scalar(expr)?,
                negated: *negated,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::Conjunct;
    use mv_plan::OutputList;

    #[test]
    fn example1_view_from_the_paper() {
        // The paper's Example 1 (modulo the gross_revenue naming).
        let (cat, t) = tpch_catalog();
        let v = crate::parse_view(
            "create view v1 with schemabinding as \
             select p_partkey, p_name, p_retailprice, count_big(*) as cnt, \
                    sum(l_extendedprice * l_quantity) as gross_revenue \
             from dbo.lineitem, dbo.part \
             where p_partkey < 1000 and p_name like '%steel%' and p_partkey = l_partkey \
             group by p_partkey, p_name, p_retailprice",
            &cat,
        )
        .unwrap();
        assert_eq!(v.name, "v1");
        assert_eq!(v.expr.tables, vec![t.lineitem, t.part]);
        assert!(v.expr.is_aggregate());
        assert_eq!(v.expr.output_arity(), 5);
        assert_eq!(v.key, vec![0, 1, 2]); // the grouping columns
        assert!(v.expr.count_star_position().is_some());
        // Conjuncts: range + residual LIKE + equijoin.
        assert_eq!(v.expr.conjuncts.len(), 3);
    }

    #[test]
    fn qualified_and_unqualified_columns() {
        let (cat, t) = tpch_catalog();
        let q = parse_query(
            "select l.l_orderkey from lineitem l, orders o \
             where l.l_orderkey = o.o_orderkey and o_custkey >= 50",
            &cat,
        )
        .unwrap();
        assert_eq!(q.tables, vec![t.lineitem, t.orders]);
        assert!(matches!(q.conjuncts[0], Conjunct::ColumnEq(..)));
        assert!(matches!(q.conjuncts[1], Conjunct::Range { .. }));
    }

    #[test]
    fn ambiguity_and_unknowns_rejected() {
        let (cat, _) = tpch_catalog();
        assert!(parse_query("select x from lineitem", &cat).is_err());
        assert!(parse_query("select l_orderkey from nosuch", &cat).is_err());
        assert!(parse_query("select l_orderkey from lineitem, lineitem", &cat).is_err());
        // Same table twice with aliases is fine.
        assert!(parse_query(
            "select a.n_name from nation a, nation b where a.n_regionkey = b.n_regionkey",
            &cat
        )
        .is_ok());
    }

    #[test]
    fn between_becomes_two_ranges() {
        let (cat, _) = tpch_catalog();
        let q = parse_query(
            "select l_orderkey from lineitem where l_orderkey between 1000 and 1500",
            &cat,
        )
        .unwrap();
        assert_eq!(q.conjuncts.len(), 2);
        assert!(q
            .conjuncts
            .iter()
            .all(|c| matches!(c, Conjunct::Range { .. })));
    }

    #[test]
    fn date_literals_bind() {
        let (cat, _) = tpch_catalog();
        let q = parse_query(
            "select l_orderkey from lineitem where l_shipdate >= DATE '1994-01-01'",
            &cat,
        )
        .unwrap();
        let Conjunct::Range { value, .. } = &q.conjuncts[0] else {
            panic!()
        };
        assert!(matches!(value, Value::Date(_)));
        assert!(parse_query(
            "select l_orderkey from lineitem where l_shipdate >= DATE '1994-13-01'",
            &cat
        )
        .is_err());
    }

    #[test]
    fn aggregate_select_list_rules() {
        let (cat, _) = tpch_catalog();
        // Scalar item not in GROUP BY: error.
        assert!(parse_query(
            "select o_orderkey, count_big(*) as c from orders group by o_custkey",
            &cat
        )
        .is_err());
        // GROUP BY expression not selected: error.
        assert!(parse_query(
            "select count_big(*) as c from orders group by o_custkey",
            &cat
        )
        .is_err());
        // Aggregate before a grouping column: error.
        assert!(parse_query(
            "select count_big(*) as c, o_custkey from orders group by o_custkey",
            &cat
        )
        .is_err());
        // Unnamed aggregate: error.
        assert!(parse_query(
            "select o_custkey, count_big(*) from orders group by o_custkey",
            &cat
        )
        .is_err());
        // AVG: rejected with guidance.
        let err = parse_query(
            "select o_custkey, avg(o_totalprice) as a from orders group by o_custkey",
            &cat,
        )
        .unwrap_err();
        assert!(err.message.contains("AVG"));
    }

    #[test]
    fn scalar_aggregate_without_group_by() {
        let (cat, _) = tpch_catalog();
        let q = parse_query(
            "select count_big(*) as cnt, sum(o_totalprice) as total from orders",
            &cat,
        )
        .unwrap();
        let OutputList::Aggregate {
            group_by,
            aggregates,
        } = &q.output
        else {
            panic!()
        };
        assert!(group_by.is_empty());
        assert_eq!(aggregates.len(), 2);
    }

    #[test]
    fn negative_literals_fold() {
        let (cat, _) = tpch_catalog();
        let q = parse_query(
            "select s_suppkey from supplier where s_acctbal > -500",
            &cat,
        )
        .unwrap();
        assert!(matches!(
            &q.conjuncts[0],
            Conjunct::Range {
                value: Value::Int(-500),
                ..
            }
        ));
    }

    #[test]
    fn expression_outputs_need_names() {
        let (cat, _) = tpch_catalog();
        assert!(parse_query("select l_quantity * l_extendedprice from lineitem", &cat).is_err());
        assert!(parse_query(
            "select l_quantity * l_extendedprice as gross from lineitem",
            &cat
        )
        .is_ok());
    }
}
