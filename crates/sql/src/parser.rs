//! Recursive-descent parser producing an unbound AST.

use crate::lexer::{Spanned, Token};
use crate::SqlError;
use mv_expr::{BinOp, CmpOp};

/// Unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstScalar {
    /// `[qualifier.]name`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Int(i64),
    Float(f64),
    Str(String),
    /// `DATE 'YYYY-MM-DD'`.
    DateLit(String),
    /// Binary arithmetic.
    Binary {
        op: BinOp,
        left: Box<AstScalar>,
        right: Box<AstScalar>,
    },
    /// Unary minus.
    Neg(Box<AstScalar>),
}

/// Unbound boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstBool {
    And(Vec<AstBool>),
    Or(Vec<AstBool>),
    Not(Box<AstBool>),
    Cmp {
        op: CmpOp,
        left: AstScalar,
        right: AstScalar,
    },
    Between {
        expr: AstScalar,
        lo: AstScalar,
        hi: AstScalar,
        negated: bool,
    },
    Like {
        expr: AstScalar,
        pattern: String,
        negated: bool,
    },
    IsNull {
        expr: AstScalar,
        negated: bool,
    },
}

/// Unbound aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub enum AstAgg {
    /// `COUNT(*)` or `COUNT_BIG(*)`.
    CountStar,
    /// `SUM(expr)`.
    Sum(AstScalar),
    /// `AVG(expr)` — recognized so the binder can give a precise error
    /// (the paper rewrites AVG to SUM/COUNT at a level our plan shape
    /// does not represent).
    Avg(AstScalar),
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Scalar {
        expr: AstScalar,
        alias: Option<String>,
    },
    Agg {
        agg: AstAgg,
        alias: Option<String>,
    },
}

/// A table in the FROM list.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name (a `dbo.` schema prefix is accepted and dropped).
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// An unbound SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct AstSelect {
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<AstBool>,
    pub group_by: Vec<AstScalar>,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum AstStatement {
    Select(AstSelect),
    CreateView { name: String, select: AstSelect },
}

/// Keywords that terminate an expression and must not be taken as aliases.
const RESERVED: &[&str] = &[
    "select",
    "from",
    "where",
    "group",
    "by",
    "and",
    "or",
    "not",
    "like",
    "between",
    "is",
    "null",
    "as",
    "create",
    "view",
    "with",
    "schemabinding",
    "sum",
    "count",
    "count_big",
    "avg",
    "date",
    "order",
    "having",
];

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
}

/// Parse a full statement.
pub fn parse(tokens: &[Spanned]) -> Result<AstStatement, SqlError> {
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.peek_keyword("create") {
        p.parse_create_view()?
    } else {
        AstStatement::Select(p.parse_select()?)
    };
    p.eat(&Token::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(stmt)
}

impl<'a> Parser<'a> {
    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn error(&self, msg: impl Into<String>) -> SqlError {
        SqlError::new(msg, self.offset())
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), SqlError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {}", kw.to_uppercase())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek() {
            Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn parse_create_view(&mut self) -> Result<AstStatement, SqlError> {
        self.expect_keyword("create")?;
        self.expect_keyword("view")?;
        let name = self.expect_ident("view name")?;
        if self.eat_keyword("with") {
            self.expect_keyword("schemabinding")?;
        }
        self.expect_keyword("as")?;
        let select = self.parse_select()?;
        Ok(AstStatement::CreateView { name, select })
    }

    fn parse_select(&mut self) -> Result<AstSelect, SqlError> {
        self.expect_keyword("select")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword("from")?;
        let mut from = vec![self.parse_table_ref()?];
        while self.eat(&Token::Comma) {
            from.push(self.parse_table_ref()?);
        }
        let where_clause = if self.eat_keyword("where") {
            Some(self.parse_bool()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.parse_scalar()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.parse_scalar()?);
            }
        }
        Ok(AstSelect {
            items,
            from,
            where_clause,
            group_by,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        // Aggregates.
        let agg = if self.eat_keyword("count") || self.eat_keyword("count_big") {
            self.expect(&Token::LParen, "(")?;
            self.expect(&Token::Star, "*")?;
            self.expect(&Token::RParen, ")")?;
            Some(AstAgg::CountStar)
        } else if self.eat_keyword("sum") {
            self.expect(&Token::LParen, "(")?;
            let e = self.parse_scalar()?;
            self.expect(&Token::RParen, ")")?;
            Some(AstAgg::Sum(e))
        } else if self.eat_keyword("avg") {
            self.expect(&Token::LParen, "(")?;
            let e = self.parse_scalar()?;
            self.expect(&Token::RParen, ")")?;
            Some(AstAgg::Avg(e))
        } else {
            None
        };
        if let Some(agg) = agg {
            let alias = self.parse_alias()?;
            return Ok(SelectItem::Agg { agg, alias });
        }
        let expr = self.parse_scalar()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Scalar { expr, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_keyword("as") {
            return Ok(Some(self.expect_ident("alias")?));
        }
        // Bare alias (identifier that is not a keyword).
        if let Some(Token::Ident(s)) = self.peek() {
            if !RESERVED.contains(&s.as_str()) {
                let s = s.clone();
                self.pos += 1;
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, SqlError> {
        let first = self.expect_ident("table name")?;
        let name = if self.eat(&Token::Dot) {
            // schema.table — the schema (e.g. `dbo`) is dropped.
            self.expect_ident("table name")?
        } else {
            first
        };
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    // Boolean grammar: or := and (OR and)*, and := unary (AND unary)*,
    // unary := NOT unary | predicate | ( or ).
    fn parse_bool(&mut self) -> Result<AstBool, SqlError> {
        let mut parts = vec![self.parse_bool_and()?];
        while self.eat_keyword("or") {
            parts.push(self.parse_bool_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            AstBool::Or(parts)
        })
    }

    fn parse_bool_and(&mut self) -> Result<AstBool, SqlError> {
        let mut parts = vec![self.parse_bool_unary()?];
        while self.eat_keyword("and") {
            parts.push(self.parse_bool_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            AstBool::And(parts)
        })
    }

    fn parse_bool_unary(&mut self) -> Result<AstBool, SqlError> {
        if self.eat_keyword("not") {
            return Ok(AstBool::Not(Box::new(self.parse_bool_unary()?)));
        }
        // A leading '(' is ambiguous: boolean group or scalar
        // parenthesization. Try the boolean reading first and backtrack.
        if self.peek() == Some(&Token::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.parse_bool() {
                if self.eat(&Token::RParen) {
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<AstBool, SqlError> {
        let left = self.parse_scalar()?;
        // IS [NOT] NULL
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(AstBool::IsNull {
                expr: left,
                negated,
            });
        }
        // [NOT] LIKE / BETWEEN
        let negated = self.eat_keyword("not");
        if self.eat_keyword("like") {
            let pattern = match self.peek() {
                Some(Token::Str(s)) => {
                    let s = s.clone();
                    self.pos += 1;
                    s
                }
                _ => return Err(self.error("expected a string pattern after LIKE")),
            };
            return Ok(AstBool::Like {
                expr: left,
                pattern,
                negated,
            });
        }
        if self.eat_keyword("between") {
            let lo = self.parse_scalar()?;
            self.expect_keyword("and")?;
            let hi = self.parse_scalar()?;
            return Ok(AstBool::Between {
                expr: left,
                lo,
                hi,
                negated,
            });
        }
        if negated {
            return Err(self.error("expected LIKE or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(Token::Ne) => CmpOp::Ne,
            _ => return Err(self.error("expected a comparison operator")),
        };
        self.pos += 1;
        let right = self.parse_scalar()?;
        Ok(AstBool::Cmp { op, left, right })
    }

    // Scalar grammar: additive := mult ((+|-) mult)*,
    // mult := unary ((*|/) unary)*, unary := - unary | primary.
    fn parse_scalar(&mut self) -> Result<AstScalar, SqlError> {
        let mut left = self.parse_mult()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_mult()?;
            left = AstScalar::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_mult(&mut self) -> Result<AstScalar, SqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = AstScalar::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<AstScalar, SqlError> {
        if self.eat(&Token::Minus) {
            return Ok(AstScalar::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstScalar, SqlError> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(AstScalar::Int(v))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(AstScalar::Float(v))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(AstScalar::Str(s))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.parse_scalar()?;
                self.expect(&Token::RParen, ")")?;
                Ok(e)
            }
            Some(Token::Ident(s)) if s == "date" => {
                self.pos += 1;
                match self.peek().cloned() {
                    Some(Token::Str(d)) => {
                        self.pos += 1;
                        Ok(AstScalar::DateLit(d))
                    }
                    _ => Err(self.error("expected a date string after DATE")),
                }
            }
            Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                self.pos += 1;
                if self.eat(&Token::Dot) {
                    let name = self.expect_ident("column name")?;
                    Ok(AstScalar::Column {
                        qualifier: Some(s),
                        name,
                    })
                } else {
                    Ok(AstScalar::Column {
                        qualifier: None,
                        name: s,
                    })
                }
            }
            _ => Err(self.error("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_ok(sql: &str) -> AstStatement {
        parse(&tokenize(sql).unwrap()).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    #[test]
    fn simple_select() {
        let AstStatement::Select(s) = parse_ok("SELECT a, b FROM t WHERE a = 1") else {
            panic!()
        };
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.where_clause.is_some());
        assert!(s.group_by.is_empty());
    }

    #[test]
    fn aggregates_and_group_by() {
        let AstStatement::Select(s) = parse_ok(
            "SELECT o_custkey, COUNT_BIG(*) AS cnt, SUM(a * b) AS total \
             FROM orders GROUP BY o_custkey",
        ) else {
            panic!()
        };
        assert!(matches!(
            s.items[1],
            SelectItem::Agg {
                agg: AstAgg::CountStar,
                ..
            }
        ));
        assert!(matches!(
            s.items[2],
            SelectItem::Agg {
                agg: AstAgg::Sum(_),
                ..
            }
        ));
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn create_view_with_schemabinding() {
        let AstStatement::CreateView { name, select } =
            parse_ok("CREATE VIEW v1 WITH SCHEMABINDING AS SELECT a FROM dbo.t")
        else {
            panic!()
        };
        assert_eq!(name, "v1");
        assert_eq!(select.from[0].name, "t");
    }

    #[test]
    fn between_like_is_null() {
        let AstStatement::Select(s) = parse_ok(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE '%x%' \
             AND c IS NOT NULL AND d NOT LIKE 'y%'",
        ) else {
            panic!()
        };
        let AstBool::And(parts) = s.where_clause.unwrap() else {
            panic!()
        };
        assert_eq!(parts.len(), 4);
        assert!(matches!(parts[0], AstBool::Between { negated: false, .. }));
        assert!(matches!(parts[1], AstBool::Like { negated: false, .. }));
        assert!(matches!(parts[2], AstBool::IsNull { negated: true, .. }));
        assert!(matches!(parts[3], AstBool::Like { negated: true, .. }));
    }

    #[test]
    fn boolean_parentheses_and_precedence() {
        let AstStatement::Select(s) = parse_ok("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        else {
            panic!()
        };
        let AstBool::And(parts) = s.where_clause.unwrap() else {
            panic!("AND should be at the top")
        };
        assert!(matches!(parts[0], AstBool::Or(_)));
    }

    #[test]
    fn scalar_parentheses_in_comparison() {
        // The '(' here must backtrack to a scalar reading.
        let AstStatement::Select(s) = parse_ok("SELECT a FROM t WHERE (a + b) * 2 > 10") else {
            panic!()
        };
        assert!(matches!(s.where_clause.unwrap(), AstBool::Cmp { .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let AstStatement::Select(s) = parse_ok("SELECT a + b * c FROM t") else {
            panic!()
        };
        let SelectItem::Scalar { expr, .. } = &s.items[0] else {
            panic!()
        };
        // a + (b * c)
        let AstScalar::Binary {
            op: BinOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("expected + at the top, got {expr:?}")
        };
        assert!(matches!(**right, AstScalar::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn aliases_and_qualified_columns() {
        let AstStatement::Select(s) = parse_ok(
            "SELECT l.l_orderkey AS k FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey",
        ) else {
            panic!()
        };
        assert_eq!(s.from[0].alias.as_deref(), Some("l"));
        let SelectItem::Scalar { expr, alias } = &s.items[0] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("k"));
        assert_eq!(
            *expr,
            AstScalar::Column {
                qualifier: Some("l".into()),
                name: "l_orderkey".into()
            }
        );
    }

    #[test]
    fn date_literals_and_negatives() {
        let AstStatement::Select(s) =
            parse_ok("SELECT a FROM t WHERE d >= DATE '1994-01-01' AND x > -5")
        else {
            panic!()
        };
        let AstBool::And(parts) = s.where_clause.unwrap() else {
            panic!()
        };
        assert!(matches!(
            &parts[0],
            AstBool::Cmp { right: AstScalar::DateLit(d), .. } if d == "1994-01-01"
        ));
        assert!(matches!(
            &parts[1],
            AstBool::Cmp {
                right: AstScalar::Neg(_),
                ..
            }
        ));
    }

    #[test]
    fn errors_are_reported() {
        for bad in [
            "SELECT",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a ==",
            "SELECT a FROM t GROUP",
            "CREATE VIEW AS SELECT a FROM t",
            "SELECT a FROM t extra garbage (",
        ] {
            let r = tokenize(bad).and_then(|t| parse(&t));
            assert!(r.is_err(), "{bad} should fail");
        }
    }
}
