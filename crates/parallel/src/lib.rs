//! Fork-join fan-out over slices built on `std::thread::scope`.
//!
//! The matching engine needs exactly one parallel shape: map a pure
//! function over a slice of work items and collect the results **in
//! input order**. `rayon` would provide this as `par_iter().map()`, but
//! the build container cannot fetch external crates, so this crate
//! implements the same contract on the standard library alone:
//!
//! * deterministic output order (result `i` comes from item `i`),
//! * dynamic load balancing (workers claim chunks from a shared atomic
//!   cursor, so a few expensive items don't idle the other workers),
//! * zero unsafe code (each worker returns `(chunk index, results)`
//!   pairs that are reassembled after the join).
//!
//! Threads are spawned per call. For the matching workload this is the
//! right trade-off: a fan-out is only attempted above a candidate-count
//! threshold where per-item work dominates the ~10 µs thread spawn cost,
//! and keeping the engine free of a resident pool keeps it trivially
//! `Send + Sync`.

pub mod sync;

use std::num::NonZeroUsize;
// The fan-out cursor and the parallelism override are plain counters in
// the facade's home crate itself. mv-lint: allow(MV201)
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use sync::RwLock;

std::thread_local! {
    /// Set while the current thread is a `par_map` worker, so nested
    /// fan-outs can detect they are already inside one.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Is the current thread one of this crate's fan-out workers? A caller
/// that is already running inside a `par_map` should not fan out again:
/// every available core is busy with its siblings, so a nested spawn only
/// adds thread-creation latency and oversubscription (the bench trajectory
/// recorded the batch path *losing* to serial for exactly this reason).
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Test-only override for [`effective_parallelism`]; 0 means "no
/// override, probe the machine".
static PARALLELISM_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The machine's available parallelism, probed once and cached.
/// `std::thread::available_parallelism` re-reads the cgroup/affinity state
/// on every call, which is far too slow for a per-query decision.
pub fn effective_parallelism() -> usize {
    let forced = PARALLELISM_OVERRIDE.load(Ordering::SeqCst);
    if forced != 0 {
        return forced;
    }
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Force [`effective_parallelism`] to report a fixed worker count
/// (`Some(n)`), or clear the override (`None`). For tests and model
/// programs that need worker counts independent of host CPU topology —
/// production code must never call this.
#[doc(hidden)]
pub fn set_effective_parallelism_override(n: Option<usize>) {
    PARALLELISM_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Number of workers to use for `hint` work items: the machine's
/// available parallelism (cached), but never more workers than items, and
/// never a nested fan-out from inside another one.
pub fn workers_for(hint: usize) -> usize {
    if in_worker() {
        return 1;
    }
    effective_parallelism().min(hint).max(1)
}

/// An atomically publishable shared pointer — the `arc-swap` shape on
/// std alone. Readers `load` a pinned `Arc` snapshot (two atomic ops under
/// an uncontended read lock); writers build a complete replacement value
/// and `store` it, never blocking readers for longer than the pointer
/// swap. The engine publishes its catalog snapshots through this.
#[derive(Debug)]
pub struct Published<T> {
    inner: RwLock<std::sync::Arc<T>>,
}

impl<T> Published<T> {
    /// Wrap an initial value.
    pub fn new(value: T) -> Published<T> {
        Published {
            inner: RwLock::new(std::sync::Arc::new(value)),
        }
    }

    /// Pin the current value. The returned `Arc` stays coherent however
    /// many `store`s happen afterwards.
    pub fn load(&self) -> std::sync::Arc<T> {
        sync::read_or_recover(&self.inner).clone()
    }

    /// Atomically publish a replacement value. Readers that already hold
    /// a pinned `Arc` keep it; new `load`s see the replacement.
    pub fn store(&self, value: std::sync::Arc<T>) {
        *sync::write_or_recover(&self.inner) = value;
    }
}

/// Map `f` over `items` on up to `workers` threads, returning results in
/// input order. Falls back to a serial loop when `workers <= 1` or the
/// input is tiny, so callers can invoke it unconditionally.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_min_chunk(items, workers, 1, f)
}

/// [`par_map`] with a floor on the chunk size workers claim from the
/// shared cursor. For loops over many cheap items (the per-candidate
/// matching loop) a floor keeps the cursor contention and per-chunk
/// bookkeeping amortized over enough real work; `min_chunk = 1` recovers
/// plain `par_map`.
pub fn par_map_min_chunk<T, R, F>(items: &[T], workers: usize, min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.min(items.len());
    // Under the model checker, fan-outs run serially: scoped worker
    // threads cannot be routed through the cooperative scheduler, and
    // the fan-out body is pure, so serial execution is observationally
    // equivalent for the protocol being checked.
    if workers <= 1 || items.len() <= 1 || cfg!(mv_model) {
        return items.iter().map(f).collect();
    }

    // Chunks are finer than the worker count so a skewed item cannot
    // serialize the tail: aim for ~4 chunks per worker, at least
    // `min_chunk` (>= 1) items per chunk.
    let chunk = (items.len() / (workers * 4)).max(min_chunk.max(1));
    let n_chunks = items.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);

    let mut per_chunk: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        // Pure work distribution: the claimed index is the
                        // only communication. mv-lint: allow(MV202)
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * chunk;
                        let hi = (lo + chunk).min(items.len());
                        mine.push((c, items[lo..hi].iter().map(&f).collect()));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    per_chunk.sort_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(items.len());
    for (_, mut rs) in per_chunk {
        out.append(&mut rs);
    }
    out
}

/// `par_map` then flatten, preserving item order — the shape of a
/// candidate loop where each item yields zero or more results.
pub fn par_flat_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Vec<R> + Sync,
{
    par_map(items, workers, f).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for workers in [1, 2, 4, 7] {
            let out = par_map(&items, workers, |&x| x * 3);
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn flat_map_matches_serial() {
        let items: Vec<usize> = (0..257).collect();
        let f = |&x: &usize| (0..x % 4).map(|i| x * 10 + i).collect::<Vec<_>>();
        let serial: Vec<usize> = items.iter().flat_map(f).collect();
        assert_eq!(par_flat_map(&items, 8, f), serial);
    }

    #[test]
    fn handles_edge_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[42], 8, |&x| x + 1), vec![43]);
        assert_eq!(par_map(&[1, 2], 64, |&x| x), vec![1, 2]);
    }

    #[test]
    fn skewed_work_still_ordered() {
        // Early items are much slower: exercises chunk stealing.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 8, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn min_chunk_matches_serial() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x ^ 7).collect();
        for min_chunk in [0, 1, 16, 1000] {
            assert_eq!(par_map_min_chunk(&items, 4, min_chunk, |&x| x ^ 7), serial);
        }
    }

    // One test body covers both the bounds and the override: the
    // override mutates a process-global, and the test harness runs
    // `#[test]` functions concurrently.
    #[test]
    fn workers_for_is_bounded_and_overridable() {
        assert_eq!(workers_for(0), 1);
        assert!(workers_for(1000) >= 1);
        assert!(workers_for(2) <= 2);
        assert_eq!(workers_for(1000), effective_parallelism().min(1000));

        // Prime the real probe first so clearing the override falls back
        // to a cached honest value.
        let honest = effective_parallelism();
        set_effective_parallelism_override(Some(3));
        assert_eq!(effective_parallelism(), 3);
        assert_eq!(workers_for(1000), 3);
        set_effective_parallelism_override(Some(1));
        assert_eq!(workers_for(1000), 1);
        set_effective_parallelism_override(None);
        assert_eq!(effective_parallelism(), honest);
    }

    #[test]
    fn recover_helpers_survive_poisoning() {
        let m = sync::Mutex::new(7u64);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison it");
        }));
        assert_eq!(*sync::lock_or_recover(&m), 7, "mutex value recovered");

        let l = sync::RwLock::new(9u64);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = l.write();
            panic!("poison it");
        }));
        assert_eq!(*sync::read_or_recover(&l), 9);
        *sync::write_or_recover(&l) = 10;
        assert_eq!(*sync::read_or_recover(&l), 10);
    }

    #[test]
    fn no_nested_fanout_from_workers() {
        // From the outside we are not a worker; from inside a par_map
        // worker `workers_for` must refuse to fan out again.
        assert!(!in_worker());
        let items: Vec<u32> = (0..8).collect();
        let inner_workers = par_map(&items, 4, |_| {
            assert!(in_worker());
            workers_for(1000)
        });
        assert!(inner_workers.iter().all(|&w| w == 1));
        assert!(!in_worker(), "flag must not leak back to the caller");
    }

    #[test]
    fn published_pointer_swaps_atomically() {
        let p = Published::new(vec![1, 2, 3]);
        let pinned = p.load();
        p.store(std::sync::Arc::new(vec![9]));
        assert_eq!(*pinned, vec![1, 2, 3], "pinned snapshot stays coherent");
        assert_eq!(*p.load(), vec![9]);

        // Concurrent readers always observe one of the published values.
        let p = std::sync::Arc::new(Published::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let p = std::sync::Arc::clone(&p);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        let v = *p.load();
                        assert!(v <= 1000);
                    }
                });
            }
            for i in 1..=1000 {
                p.store(std::sync::Arc::new(i));
            }
        });
        assert_eq!(*p.load(), 1000);
    }
}
