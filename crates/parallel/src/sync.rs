//! The workspace's synchronization facade.
//!
//! Engine code must name its sync primitives through this module rather
//! than `std::sync` directly (`mv-lint --source` rule MV201 enforces
//! this). In a normal build the re-exports *are* the std types — zero
//! cost. Under `--cfg mv_model` they swap for the `mv-model` shims, so
//! the model checker's cooperative scheduler sees every lock, publish,
//! and atomic the concurrency protocol performs.
//!
//! The `*_or_recover` helpers are the blessed way to acquire a lock in
//! non-test code: a matcher that panicked while holding a shard lock
//! poisons it, and the engine's locks only guard data that is replaced
//! wholesale (snapshot pointers) or rebuildable (cache entries), so
//! recovering the poisoned value is always safe — and much better than
//! cascading the panic into every later query (MV205 enforces this).

// mv-lint: allow(MV201)

use std::sync::PoisonError;

#[cfg(not(mv_model))]
pub use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(mv_model)]
pub use mv_model::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub use std::sync::Arc;

pub mod atomic {
    // mv-lint: allow(MV201)
    #[cfg(not(mv_model))]
    pub use std::sync::atomic::{AtomicU64, AtomicUsize};

    #[cfg(mv_model)]
    pub use mv_model::atomic::{AtomicU64, AtomicUsize};

    pub use std::sync::atomic::Ordering;
}

pub mod thread {
    #[cfg(not(mv_model))]
    pub use std::thread::{spawn, JoinHandle};

    #[cfg(mv_model)]
    pub use mv_model::thread::{spawn, JoinHandle};
}

/// Acquire a mutex, recovering the inner value if a previous holder
/// panicked.
pub fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a read lock, recovering from poisoning.
pub fn read_or_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a write lock, recovering from poisoning.
pub fn write_or_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}
