//! Deterministic TPC-H style data generation and in-memory row storage.
//!
//! The paper's experiments run on "TPC-H at scale factor 0.5 (500MB)" and
//! note that "the scale factor does not affect optimization time" — the
//! matcher and optimizer work on definitions, not data. Data still matters
//! for two things in this reproduction:
//!
//! * the *correctness oracle*: executing a substitute against a
//!   materialized view must return exactly the rows of the original query
//!   (bag semantics), which the `mv-exec` tests verify over this data;
//! * realistic column statistics for the workload generator's cardinality
//!   targeting and the optimizer's cost model.
//!
//! Monetary columns are generated as integer cents rather than floats so
//! that SUM aggregation is exact and associative — partial aggregation
//! (the view) followed by re-aggregation (the compensating group-by) is
//! then bit-identical to direct aggregation, which keeps the bag-equality
//! oracle sharp.

pub mod db;
pub mod enumerate;
pub mod gen;

pub use db::{Database, Row};
pub use enumerate::{
    topo_order, ColumnDomain, EnumOutcome, EnumSpec, EnumStats, Enumerator, TableSpec,
    MAX_ROW_DOMAIN,
};
pub use gen::{generate_tpch, TpchScale};
