//! Bounded, constraint-aware database enumeration for the `mv-prove`
//! bounded model checker (DESIGN.md §15).
//!
//! Given a per-column finite value domain and a row bound `k`, the
//! enumerator walks **every** database over the supplied tables with at
//! most `k` rows per table whose contents satisfy the schema's integrity
//! constraints:
//!
//! * declared keys are unique (SQL semantics: rows carrying a NULL in a
//!   key column never collide),
//! * single-column foreign keys take values only from the keys actually
//!   present in the referenced table (Chirkova-style *relative*
//!   equivalence: only constraint-satisfying databases are considered),
//!   with NULL still allowed on nullable referencing columns,
//! * multi-column foreign keys are validated row-by-row against the
//!   referenced table's contents,
//! * declared check constraints hold on every row (SQL semantics: a row
//!   is rejected only when the predicate evaluates to FALSE — UNKNOWN
//!   passes, exactly as `CHECK` behaves under NULL).
//!
//! Enumeration order is deterministic and independent of any budget, so
//! the running index doubles as a **replayable seed**: `database_at(i)`
//! reconstructs exactly the database a prior walk reported at index `i`.
//! Tables must be listed in foreign-key topological order (referenced
//! before referencing — see [`topo_order`]) so the FK domain restriction
//! can see the referenced rows.

use crate::db::{Database, Row};
use mv_catalog::{Catalog, ColumnType, TableId, Value};
use mv_expr::{ColRef, Conjunct};
use std::collections::HashMap;

/// Finite value domain of one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnDomain {
    /// Candidate non-NULL values, in enumeration order.
    pub values: Vec<Value>,
    /// Additionally try NULL (only meaningful on nullable columns).
    pub with_null: bool,
}

impl ColumnDomain {
    /// A domain holding exactly the given values, never NULL.
    pub fn of(values: Vec<Value>) -> Self {
        ColumnDomain {
            values,
            with_null: false,
        }
    }

    /// The canonical single default value for a column type — used for
    /// columns the proved pair never references.
    pub fn default_value(ty: ColumnType) -> Value {
        match ty {
            ColumnType::Int => Value::Int(0),
            ColumnType::Float => Value::Float(0.0),
            ColumnType::Str => Value::Str("a".into()),
            ColumnType::Date => Value::Date(0),
        }
    }
}

/// The domain of one table: a [`ColumnDomain`] per column, in column
/// order (full arity).
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// The table.
    pub table: TableId,
    /// Per-column domains, `columns.len()` = the table's arity.
    pub columns: Vec<ColumnDomain>,
}

/// A full enumeration specification: tables in FK topological order plus
/// the row bound `k`.
#[derive(Debug, Clone)]
pub struct EnumSpec {
    /// Tables to populate, referenced tables before referencing ones.
    pub tables: Vec<TableSpec>,
    /// Maximum rows per table (the bound `k`).
    pub max_rows: usize,
}

/// How an enumeration walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumOutcome {
    /// Every database up to the bound was visited.
    Exhausted,
    /// The database budget ran out first.
    BudgetExhausted,
    /// The visitor asked to stop (counterexample found).
    Stopped,
    /// A table's row domain exceeded [`MAX_ROW_DOMAIN`]; nothing visited.
    DomainTooLarge,
}

/// Result of an enumeration walk.
#[derive(Debug, Clone, Copy)]
pub struct EnumStats {
    /// Databases visited (equivalently: the next index to be assigned).
    pub databases: u64,
    /// Why the walk ended.
    pub outcome: EnumOutcome,
}

/// Hard cap on candidate rows per table; above this the spec is refused
/// rather than silently truncated (the caller reports it as a bound).
pub const MAX_ROW_DOMAIN: usize = 4096;

/// Order `tables` so every referenced table precedes its referencing
/// tables (foreign keys restricted to the set). `None` on an FK cycle.
/// Ties break by `TableId`, so the order is deterministic.
pub fn topo_order(catalog: &Catalog, tables: &[TableId]) -> Option<Vec<TableId>> {
    let mut set: Vec<TableId> = tables.to_vec();
    set.sort();
    set.dedup();
    let mut out = Vec::with_capacity(set.len());
    let mut placed: Vec<bool> = vec![false; set.len()];
    while out.len() < set.len() {
        let mut progressed = false;
        for (i, &t) in set.iter().enumerate() {
            if placed[i] {
                continue;
            }
            // A table is ready when every table it references (within the
            // set) is already placed.
            let ready = catalog.foreign_keys_from(t).all(|fkid| {
                let to = catalog.foreign_key(fkid).to_table;
                to == t || !set.contains(&to) || out.contains(&to)
            });
            if ready {
                out.push(t);
                placed[i] = true;
                progressed = true;
            }
        }
        if !progressed {
            return None; // cycle
        }
    }
    Some(out)
}

/// The bounded database enumerator. Borrows the catalog, the declared
/// check constraints (per table, column references in table space with
/// `occ = 0`), and the spec.
pub struct Enumerator<'a> {
    catalog: &'a Catalog,
    checks: &'a HashMap<TableId, Vec<Conjunct>>,
    spec: &'a EnumSpec,
}

impl<'a> Enumerator<'a> {
    /// Build an enumerator. The spec's tables must already be in FK
    /// topological order (see [`topo_order`]).
    pub fn new(
        catalog: &'a Catalog,
        checks: &'a HashMap<TableId, Vec<Conjunct>>,
        spec: &'a EnumSpec,
    ) -> Self {
        Enumerator {
            catalog,
            checks,
            spec,
        }
    }

    /// Visit every valid database up to the bound, in deterministic
    /// order, calling `f(index, db)` for each. `f` returns `false` to
    /// stop early. At most `budget` databases are visited.
    pub fn for_each(&self, budget: u64, f: impl FnMut(u64, &Database) -> bool) -> EnumStats {
        self.for_each_range(0, budget, f)
    }

    /// Visit the contiguous index range `[start, end)` of the same
    /// deterministic walk: `f(index, db)` fires only for global indices in
    /// the range, and the walk stops once `end` is reached. Indices are
    /// identical to a full [`Enumerator::for_each`] walk, so chunked
    /// (parallel) consumers report the same replayable seeds as a serial
    /// one. The prefix `[0, start)` is still traversed (enumeration is
    /// stateful), just not handed to `f` — partitioning pays the walk cost
    /// per chunk but shares out the visitor cost, which dominates when `f`
    /// executes plans.
    pub fn for_each_range(
        &self,
        start: u64,
        end: u64,
        mut f: impl FnMut(u64, &Database) -> bool,
    ) -> EnumStats {
        let mut db = Database::new(self.catalog.clone());
        let mut index = 0u64;
        let mut g = |i: u64, db: &Database| i < start || f(i, db);
        let outcome = self.recurse(0, &mut db, end, &mut index, &mut g);
        EnumStats {
            databases: index,
            outcome,
        }
    }

    /// Count the databases up to the bound, visiting at most `cap`.
    /// Returns the count and whether the space was exhausted.
    pub fn count(&self, cap: u64) -> (u64, bool) {
        let stats = self.for_each(cap, |_, _| true);
        (stats.databases, stats.outcome == EnumOutcome::Exhausted)
    }

    /// Reconstruct the database a walk assigned `index` — the replayable
    /// seed of an `MV302` counterexample. `None` when the space holds
    /// fewer databases.
    pub fn database_at(&self, index: u64) -> Option<Database> {
        let mut found = None;
        self.for_each(index + 1, |i, db| {
            if i == index {
                found = Some(db.clone());
                false
            } else {
                true
            }
        });
        found
    }

    fn recurse(
        &self,
        ti: usize,
        db: &mut Database,
        budget: u64,
        index: &mut u64,
        f: &mut impl FnMut(u64, &Database) -> bool,
    ) -> EnumOutcome {
        if ti == self.spec.tables.len() {
            if *index >= budget {
                return EnumOutcome::BudgetExhausted;
            }
            let i = *index;
            *index += 1;
            return if f(i, db) {
                EnumOutcome::Exhausted
            } else {
                EnumOutcome::Stopped
            };
        }
        let ts = &self.spec.tables[ti];
        let Some(rows) = self.row_candidates(ts, db) else {
            return EnumOutcome::DomainTooLarge;
        };
        let table = self.catalog.table(ts.table);
        let has_key = !table.keys.is_empty();
        let mut combo: Vec<usize> = Vec::new();
        for n_rows in 0..=self.spec.max_rows {
            combo.clear();
            if has_key {
                // Set semantics: strictly-increasing tuples start at 0..n.
                if n_rows > rows.len() {
                    break; // needs n_rows distinct rows
                }
                combo.extend(0..n_rows);
            } else {
                // Bag semantics: non-decreasing tuples start all-zero so
                // duplicate-row configurations are enumerated too.
                combo.resize(n_rows, 0);
            }
            loop {
                if combo.len() == n_rows
                    && (n_rows == 0 || *combo.last().unwrap() < rows.len())
                    && self.config_valid(ts.table, &rows, &combo, db)
                {
                    db.load_rows_by_index(ts.table, &rows, &combo);
                    let out = self.recurse(ti + 1, db, budget, index, f);
                    if out != EnumOutcome::Exhausted {
                        db.load_rows_by_index(ts.table, &[], &[]);
                        return out;
                    }
                }
                if n_rows == 0 || !next_combo(&mut combo, rows.len(), has_key) {
                    break;
                }
            }
        }
        db.load_rows_by_index(ts.table, &[], &[]);
        EnumOutcome::Exhausted
    }

    /// All candidate rows of one table, given the referenced tables
    /// already populated in `db`: the cartesian product of the column
    /// domains with single-column FK columns restricted to the keys
    /// present in the referenced table, filtered by the table's check
    /// constraints. `None` when the product exceeds [`MAX_ROW_DOMAIN`].
    fn row_candidates(&self, ts: &TableSpec, db: &Database) -> Option<Vec<Row>> {
        let in_spec = |t: TableId| self.spec.tables.iter().any(|s| s.table == t);
        let table = self.catalog.table(ts.table);
        let mut columns: Vec<Vec<Value>> = Vec::with_capacity(ts.columns.len());
        for (ci, dom) in ts.columns.iter().enumerate() {
            let mut vals = dom.values.clone();
            for fkid in self.catalog.foreign_keys_from(ts.table) {
                let fk = self.catalog.foreign_key(fkid);
                if fk.from_columns.len() == 1
                    && fk.from_columns[0].0 as usize == ci
                    && fk.to_table != ts.table
                    && in_spec(fk.to_table)
                {
                    // Values restricted to the referenced keys present.
                    let to_col = fk.to_columns[0].0 as usize;
                    let present: Vec<&Value> = db
                        .rows(fk.to_table)
                        .iter()
                        .map(|r| &r[to_col])
                        .filter(|v| !v.is_null())
                        .collect();
                    vals.retain(|v| present.contains(&v));
                }
            }
            if dom.with_null && !table.columns[ci].not_null {
                vals.push(Value::Null);
            }
            if vals.is_empty() {
                // This column admits no value: the table can only be empty.
                return Some(Vec::new());
            }
            columns.push(vals);
        }
        let mut total = 1usize;
        for c in &columns {
            total = total.checked_mul(c.len())?;
            if total > MAX_ROW_DOMAIN {
                return None;
            }
        }
        let checks = self.checks.get(&ts.table);
        let mut rows = Vec::with_capacity(total);
        let mut idx = vec![0usize; columns.len()];
        'outer: loop {
            let row: Row = idx
                .iter()
                .zip(&columns)
                .map(|(&i, c)| c[i].clone())
                .collect();
            if self.row_passes_checks(checks, &row) {
                rows.push(row);
            }
            // Odometer, last column fastest.
            for pos in (0..columns.len()).rev() {
                idx[pos] += 1;
                if idx[pos] < columns[pos].len() {
                    continue 'outer;
                }
                idx[pos] = 0;
            }
            break;
        }
        if columns.is_empty() {
            rows.clear(); // zero-column tables hold no enumerable rows
        }
        Some(rows)
    }

    /// SQL CHECK semantics: a row is invalid only when some constraint
    /// evaluates to FALSE; UNKNOWN (NULL involved) passes.
    fn row_passes_checks(&self, checks: Option<&Vec<Conjunct>>, row: &Row) -> bool {
        let Some(checks) = checks else { return true };
        let get = |c: ColRef| row[c.col.0 as usize].clone();
        checks.iter().all(|c| c.to_bool().eval(&get) != Some(false))
    }

    /// Key uniqueness plus multi-column FK validity for one candidate
    /// row combination.
    fn config_valid(&self, t: TableId, rows: &[Row], combo: &[usize], db: &Database) -> bool {
        let table = self.catalog.table(t);
        for key in &table.keys {
            for (a, &ia) in combo.iter().enumerate() {
                for &ib in combo.iter().skip(a + 1) {
                    let collide = key.columns.iter().all(|c| {
                        let (va, vb) = (&rows[ia][c.0 as usize], &rows[ib][c.0 as usize]);
                        // SQL uniqueness: NULLs never collide.
                        !va.is_null() && !vb.is_null() && va == vb
                    });
                    if collide {
                        return false;
                    }
                }
            }
        }
        let in_spec = |to: TableId| self.spec.tables.iter().any(|s| s.table == to);
        for fkid in self.catalog.foreign_keys_from(t) {
            let fk = self.catalog.foreign_key(fkid);
            if fk.from_columns.len() == 1 || fk.to_table == t || !in_spec(fk.to_table) {
                continue; // single-column FKs already restricted per column
            }
            for &i in combo {
                let vals: Vec<&Value> = fk
                    .from_columns
                    .iter()
                    .map(|c| &rows[i][c.0 as usize])
                    .collect();
                if vals.iter().any(|v| v.is_null()) {
                    continue;
                }
                let hit = db.rows(fk.to_table).iter().any(|r| {
                    fk.to_columns
                        .iter()
                        .zip(&vals)
                        .all(|(c, v)| &r[c.0 as usize] == *v)
                });
                if !hit {
                    return false;
                }
            }
        }
        true
    }
}

/// Advance a row-index combination in place: strictly increasing tuples
/// when `distinct` (set semantics, tables with declared keys), otherwise
/// non-decreasing (bag semantics). Returns `false` when exhausted.
fn next_combo(combo: &mut [usize], n: usize, distinct: bool) -> bool {
    let k = combo.len();
    if k == 0 {
        return false;
    }
    let mut i = k;
    while i > 0 {
        i -= 1;
        let limit = if distinct { n - (k - 1 - i) } else { n };
        if combo[i] + 1 < limit {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = if distinct {
                    combo[j - 1] + 1
                } else {
                    combo[j - 1]
                };
            }
            return combo.iter().all(|&c| c < n);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::schema::{ForeignKey, TableBuilder};
    use mv_catalog::ColumnId;

    fn int(values: &[i64]) -> ColumnDomain {
        ColumnDomain::of(values.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn single_table_count_matches_closed_form() {
        let mut cat = Catalog::new();
        let t = cat.add_table(
            TableBuilder::new("t")
                .col("pk", ColumnType::Int)
                .col("x", ColumnType::Int)
                .primary_key(&["pk"])
                .build(),
        );
        let spec = EnumSpec {
            tables: vec![TableSpec {
                table: t,
                columns: vec![int(&[0, 1, 2]), int(&[10, 20])],
            }],
            max_rows: 2,
        };
        let checks = HashMap::new();
        let e = Enumerator::new(&cat, &checks, &spec);
        // 1 empty + d*m one-row + C(d,2)*m^2 two-row = 1 + 6 + 12 = 19.
        let (count, exhausted) = e.count(u64::MAX);
        assert!(exhausted);
        assert_eq!(count, 19);
    }

    #[test]
    fn fk_restriction_and_null_exemption() {
        let mut cat = Catalog::new();
        let s = cat.add_table(
            TableBuilder::new("s")
                .col("k", ColumnType::Int)
                .primary_key(&["k"])
                .build(),
        );
        let t = cat.add_table(
            TableBuilder::new("t")
                .nullable_col("f", ColumnType::Int)
                .build(),
        );
        cat.add_foreign_key(ForeignKey {
            name: "t_f".into(),
            from_table: t,
            from_columns: vec![ColumnId(0)],
            to_table: s,
            to_columns: vec![ColumnId(0)],
        });
        let spec = EnumSpec {
            tables: vec![
                TableSpec {
                    table: s,
                    columns: vec![int(&[1, 2])],
                },
                TableSpec {
                    table: t,
                    columns: vec![ColumnDomain {
                        values: vec![Value::Int(1), Value::Int(2)],
                        with_null: true,
                    }],
                },
            ],
            max_rows: 1,
        };
        let checks = HashMap::new();
        let e = Enumerator::new(&cat, &checks, &spec);
        let mut violations = 0usize;
        let stats = e.for_each(u64::MAX, |_, db| {
            violations += db.check_foreign_keys();
            true
        });
        assert_eq!(stats.outcome, EnumOutcome::Exhausted);
        assert_eq!(violations, 0, "every enumerated database satisfies FKs");
        // s empty: t may hold only NULL (FK values gone) or be empty;
        // s = {1} or {2}: t in {empty, that key, NULL}; total 2 + 2*3 = 8.
        assert_eq!(stats.databases, 8);
    }

    #[test]
    fn database_at_replays_the_walk() {
        let mut cat = Catalog::new();
        let t = cat.add_table(
            TableBuilder::new("t")
                .col("pk", ColumnType::Int)
                .primary_key(&["pk"])
                .build(),
        );
        let spec = EnumSpec {
            tables: vec![TableSpec {
                table: t,
                columns: vec![int(&[0, 1, 2])],
            }],
            max_rows: 2,
        };
        let checks = HashMap::new();
        let e = Enumerator::new(&cat, &checks, &spec);
        let mut seen: Vec<Vec<Row>> = Vec::new();
        e.for_each(u64::MAX, |_, db| {
            seen.push(db.rows(t).to_vec());
            true
        });
        for (i, rows) in seen.iter().enumerate() {
            let db = e.database_at(i as u64).expect("index within space");
            assert_eq!(db.rows(t), rows.as_slice(), "seed {i} replays");
        }
        assert!(e.database_at(seen.len() as u64).is_none());
    }

    #[test]
    fn range_partition_matches_full_walk() {
        let mut cat = Catalog::new();
        let t = cat.add_table(
            TableBuilder::new("t")
                .col("pk", ColumnType::Int)
                .col("x", ColumnType::Int)
                .primary_key(&["pk"])
                .build(),
        );
        let spec = EnumSpec {
            tables: vec![TableSpec {
                table: t,
                columns: vec![int(&[0, 1, 2]), int(&[10, 20])],
            }],
            max_rows: 2,
        };
        let checks = HashMap::new();
        let e = Enumerator::new(&cat, &checks, &spec);
        let mut full: Vec<(u64, Vec<Row>)> = Vec::new();
        let stats = e.for_each(u64::MAX, |i, db| {
            full.push((i, db.rows(t).to_vec()));
            true
        });
        assert_eq!(stats.outcome, EnumOutcome::Exhausted);
        let total = stats.databases;
        // Any contiguous partition visits the same (index, database)
        // pairs in the same global order.
        for chunks in [1u64, 2, 3, 7] {
            let mut chunked: Vec<(u64, Vec<Row>)> = Vec::new();
            for c in 0..chunks {
                let lo = c * total / chunks;
                let hi = (c + 1) * total / chunks;
                let s = e.for_each_range(lo, hi, |i, db| {
                    chunked.push((i, db.rows(t).to_vec()));
                    true
                });
                // The walk stops exactly at the end of the chunk.
                assert_eq!(s.databases, hi);
            }
            assert_eq!(chunked, full, "{chunks}-way partition replays");
        }
        // A range past the end of the space reports exhaustion.
        let s = e.for_each_range(total, total + 10, |_, _| true);
        assert_eq!(s.outcome, EnumOutcome::Exhausted);
        assert_eq!(s.databases, total);
    }

    #[test]
    fn checks_filter_rows_with_unknown_passing() {
        use mv_expr::{BoolExpr, CmpOp, ScalarExpr as S};
        let mut cat = Catalog::new();
        let t = cat.add_table(
            TableBuilder::new("t")
                .nullable_col("x", ColumnType::Int)
                .build(),
        );
        let mut checks: HashMap<TableId, Vec<Conjunct>> = HashMap::new();
        checks.insert(
            t,
            mv_expr::classify(BoolExpr::cmp(
                S::col(ColRef::new(0, 0)),
                CmpOp::Gt,
                S::lit(0i64),
            )),
        );
        let spec = EnumSpec {
            tables: vec![TableSpec {
                table: t,
                columns: vec![ColumnDomain {
                    values: vec![Value::Int(-1), Value::Int(1)],
                    with_null: true,
                }],
            }],
            max_rows: 1,
        };
        let e = Enumerator::new(&cat, &checks, &spec);
        let mut rows_seen = Vec::new();
        e.for_each(u64::MAX, |_, db| {
            if let Some(r) = db.rows(t).first() {
                rows_seen.push(r[0].clone());
            }
            true
        });
        // -1 fails the check; 1 passes; NULL passes (UNKNOWN).
        assert_eq!(rows_seen, vec![Value::Int(1), Value::Null]);
    }
}
