//! In-memory row storage and statistics collection.

use mv_catalog::{Catalog, ColumnStats, TableId, TableStats, Value};
use std::collections::HashSet;

/// One row: values in column order.
pub type Row = Vec<Value>;

/// An in-memory database: the catalog plus the rows of every base table.
#[derive(Debug, Clone)]
pub struct Database {
    /// The schema. Statistics are written back here by
    /// [`Database::collect_stats`].
    pub catalog: Catalog,
    /// Rows per table, indexed densely by [`TableId`] — the prove loop
    /// resolves scans on every database, so lookups must not hash.
    tables: Vec<Vec<Row>>,
    /// Which slots of `tables` have actually been loaded (an empty loaded
    /// table still gets statistics; a never-loaded one does not).
    loaded: Vec<bool>,
}

impl Database {
    /// An empty database over a schema.
    pub fn new(catalog: Catalog) -> Self {
        Database {
            catalog,
            tables: Vec::new(),
            loaded: Vec::new(),
        }
    }

    /// Replace the rows of a table. Panics if a row has the wrong arity —
    /// loading malformed data is a programming error.
    pub fn load(&mut self, table: TableId, rows: Vec<Row>) {
        let arity = self.catalog.table(table).columns.len();
        assert!(
            rows.iter().all(|r| r.len() == arity),
            "row arity mismatch for table {}",
            self.catalog.table(table).name
        );
        let i = table.0 as usize;
        if self.tables.len() <= i {
            self.tables.resize_with(i + 1, Vec::new);
            self.loaded.resize(i + 1, false);
        }
        self.tables[i] = rows;
        self.loaded[i] = true;
    }

    /// Replace the rows of a table with clones of `candidates[combo[..]]`,
    /// reusing the table's row buffers. Equivalent to
    /// `load(table, combo.iter().map(|&i| candidates[i].clone()).collect())`
    /// without the per-call allocations — the enumerator swaps configurations
    /// hundreds of thousands of times per proof.
    pub fn load_rows_by_index(&mut self, table: TableId, candidates: &[Row], combo: &[usize]) {
        let i = table.0 as usize;
        if self.tables.len() <= i {
            self.tables.resize_with(i + 1, Vec::new);
            self.loaded.resize(i + 1, false);
        }
        let rows = &mut self.tables[i];
        rows.truncate(combo.len());
        for (slot, &ci) in rows.iter_mut().zip(combo) {
            slot.clone_from(&candidates[ci]);
        }
        for &ci in &combo[rows.len()..] {
            rows.push(candidates[ci].clone());
        }
        self.loaded[i] = true;
    }

    /// Append rows to a table (the insert half of a base-table delta).
    /// Panics on arity mismatch, like [`Database::load`]. Marks the table
    /// loaded: a write round defines its contents even if it was never
    /// bulk-loaded.
    pub fn insert_rows(&mut self, table: TableId, rows: &[Row]) {
        let arity = self.catalog.table(table).columns.len();
        assert!(
            rows.iter().all(|r| r.len() == arity),
            "row arity mismatch for table {}",
            self.catalog.table(table).name
        );
        let i = table.0 as usize;
        if self.tables.len() <= i {
            self.tables.resize_with(i + 1, Vec::new);
            self.loaded.resize(i + 1, false);
        }
        self.tables[i].extend(rows.iter().cloned());
        self.loaded[i] = true;
    }

    /// Delete rows from a table by value, with bag semantics: each row in
    /// `rows` removes *one* matching stored row (`k` copies in the delta
    /// remove `k` duplicates). Returns how many rows were actually
    /// removed; deltas naming absent rows simply fall short, which the
    /// caller can treat as an error or ignore. Row order of survivors is
    /// preserved.
    pub fn delete_rows(&mut self, table: TableId, rows: &[Row]) -> usize {
        let i = table.0 as usize;
        let Some(stored) = self.tables.get_mut(i) else {
            return 0;
        };
        let mut pending: Vec<&Row> = rows.iter().collect();
        let before = stored.len();
        stored.retain(|r| {
            if let Some(pos) = pending.iter().position(|p| *p == r) {
                pending.swap_remove(pos);
                false
            } else {
                true
            }
        });
        before - stored.len()
    }

    /// Swap a table's stored rows with `rows`, in place. The maintenance
    /// crate evaluates a view expression "with table T's rows replaced by
    /// the delta rows": swap the delta in, evaluate, swap the real rows
    /// back — no copies either way. Marks the table loaded.
    pub fn swap_rows(&mut self, table: TableId, rows: &mut Vec<Row>) {
        let i = table.0 as usize;
        if self.tables.len() <= i {
            self.tables.resize_with(i + 1, Vec::new);
            self.loaded.resize(i + 1, false);
        }
        std::mem::swap(&mut self.tables[i], rows);
        self.loaded[i] = true;
    }

    /// The rows of a table (empty slice if never loaded).
    pub fn rows(&self, table: TableId) -> &[Row] {
        self.tables
            .get(table.0 as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Row count of a table.
    pub fn row_count(&self, table: TableId) -> usize {
        self.rows(table).len()
    }

    /// Compute per-column statistics for every loaded table and store them
    /// in the catalog.
    pub fn collect_stats(&mut self) {
        let stats: Vec<(TableId, TableStats)> = self
            .tables
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.loaded[i])
            .map(|(i, rows)| {
                let table = TableId(i as u32);
                (table, table_stats(&self.catalog, table, rows))
            })
            .collect();
        for (table, s) in stats {
            self.catalog.set_stats(table, s);
        }
    }

    /// Verify referential integrity of every declared foreign key: for
    /// each row, the (non-null) foreign-key values must appear as a key of
    /// the referenced table. Returns the number of violations found.
    ///
    /// The extra-table elimination of section 3.2 is only sound on data
    /// that satisfies its constraints, so the generator's tests call this.
    pub fn check_foreign_keys(&self) -> usize {
        let mut violations = 0;
        for (_, fk) in self.catalog.foreign_keys() {
            let referenced: HashSet<Vec<&Value>> = self
                .rows(fk.to_table)
                .iter()
                .map(|r| fk.to_columns.iter().map(|c| &r[c.0 as usize]).collect())
                .collect();
            for row in self.rows(fk.from_table) {
                let vals: Vec<&Value> =
                    fk.from_columns.iter().map(|c| &row[c.0 as usize]).collect();
                if vals.iter().any(|v| v.is_null()) {
                    continue; // nulls are exempt from FK validation
                }
                if !referenced.contains(&vals) {
                    violations += 1;
                }
            }
        }
        violations
    }
}

fn table_stats(catalog: &Catalog, table: TableId, rows: &[Row]) -> TableStats {
    let n_cols = catalog.table(table).columns.len();
    let mut columns = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut distinct: HashSet<&Value> = HashSet::new();
        let mut nulls = 0usize;
        for row in rows {
            let v = &row[c];
            if v.is_null() {
                nulls += 1;
                continue;
            }
            distinct.insert(v);
            match &min {
                None => min = Some(v.clone()),
                Some(m) if v.total_cmp(m).is_lt() => min = Some(v.clone()),
                _ => {}
            }
            match &max {
                None => max = Some(v.clone()),
                Some(m) if v.total_cmp(m).is_gt() => max = Some(v.clone()),
                _ => {}
            }
        }
        columns.push(ColumnStats {
            min: min.unwrap_or(Value::Null),
            max: max.unwrap_or(Value::Null),
            ndv: distinct.len() as u64,
            null_fraction: if rows.is_empty() {
                0.0
            } else {
                nulls as f64 / rows.len() as f64
            },
        });
    }
    TableStats {
        rows: rows.len() as u64,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::schema::TableBuilder;
    use mv_catalog::ColumnType;

    fn small_db() -> (Database, TableId) {
        let mut cat = Catalog::new();
        let t = cat.add_table(
            TableBuilder::new("t")
                .col("a", ColumnType::Int)
                .nullable_col("b", ColumnType::Int)
                .primary_key(&["a"])
                .build(),
        );
        let mut db = Database::new(cat);
        db.load(
            t,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Null],
                vec![Value::Int(3), Value::Int(10)],
                vec![Value::Int(4), Value::Int(30)],
            ],
        );
        (db, t)
    }

    #[test]
    fn stats_collection() {
        let (mut db, t) = small_db();
        db.collect_stats();
        let stats = db.catalog.stats(t).unwrap();
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.columns[0].ndv, 4);
        assert_eq!(stats.columns[0].min, Value::Int(1));
        assert_eq!(stats.columns[0].max, Value::Int(4));
        assert_eq!(stats.columns[1].ndv, 2);
        assert!((stats.columns[1].null_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fk_checking() {
        use mv_catalog::schema::ForeignKey;
        use mv_catalog::ColumnId;
        let mut cat = Catalog::new();
        let s = cat.add_table(
            TableBuilder::new("s")
                .col("k", ColumnType::Int)
                .primary_key(&["k"])
                .build(),
        );
        let t = cat.add_table(
            TableBuilder::new("t")
                .nullable_col("f", ColumnType::Int)
                .build(),
        );
        cat.add_foreign_key(ForeignKey {
            name: "t_f".into(),
            from_table: t,
            from_columns: vec![ColumnId(0)],
            to_table: s,
            to_columns: vec![ColumnId(0)],
        });
        let mut db = Database::new(cat);
        db.load(s, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        db.load(
            t,
            vec![
                vec![Value::Int(1)],
                vec![Value::Null],   // exempt
                vec![Value::Int(9)], // violation
            ],
        );
        assert_eq!(db.check_foreign_keys(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked_on_load() {
        let (mut db, t) = small_db();
        db.load(t, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn insert_and_delete_are_bag_operations() {
        let (mut db, t) = small_db();
        db.insert_rows(
            t,
            &[
                vec![Value::Int(5), Value::Int(10)],
                vec![Value::Int(5), Value::Int(10)],
            ],
        );
        assert_eq!(db.row_count(t), 6);
        // Deleting one copy leaves the other.
        let removed = db.delete_rows(t, &[vec![Value::Int(5), Value::Int(10)]]);
        assert_eq!(removed, 1);
        assert_eq!(db.row_count(t), 5);
        assert_eq!(
            db.rows(t).iter().filter(|r| r[0] == Value::Int(5)).count(),
            1
        );
        // Absent rows fall short rather than panic.
        let removed = db.delete_rows(t, &[vec![Value::Int(77), Value::Null]]);
        assert_eq!(removed, 0);
    }

    #[test]
    fn unloaded_table_is_empty() {
        let (db, _) = small_db();
        let other = TableId(99);
        assert_eq!(db.rows(other).len(), 0);
        assert_eq!(db.row_count(other), 0);
    }
}
