//! dbgen-lite: a deterministic, scaled-down TPC-H data generator.
//!
//! Produces all eight TPC-H tables with full referential integrity (every
//! declared foreign key is satisfied) and TPC-H-flavored value
//! distributions: date windows, price formulas, word-pool text columns
//! (including `steel`, so the paper's `%steel%` LIKE examples select real
//! rows). All randomness flows from a caller-provided seed.

use crate::db::{Database, Row};
use mv_catalog::tpch::{tpch_catalog, TpchTables};
use mv_catalog::types::days_from_date;
use mv_catalog::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row-count knobs. Real TPC-H fixes ratios between tables; we keep the
/// ratios but let the absolute size shrink to test/bench scale.
#[derive(Debug, Clone)]
pub struct TpchScale {
    /// Number of customers.
    pub customers: usize,
    /// Number of suppliers.
    pub suppliers: usize,
    /// Number of parts.
    pub parts: usize,
    /// Average orders per customer (TPC-H uses 10).
    pub orders_per_customer: usize,
    /// Maximum lineitems per order (TPC-H draws 1..=7).
    pub max_lineitems_per_order: usize,
}

impl TpchScale {
    /// A few hundred rows total: unit-test scale.
    pub fn tiny() -> Self {
        TpchScale {
            customers: 30,
            suppliers: 8,
            parts: 40,
            orders_per_customer: 3,
            max_lineitems_per_order: 4,
        }
    }

    /// A few tens of thousands of rows: integration-test / example scale.
    pub fn small() -> Self {
        TpchScale {
            customers: 500,
            suppliers: 50,
            parts: 600,
            orders_per_customer: 8,
            max_lineitems_per_order: 5,
        }
    }

    /// Proportional to TPC-H at the given scale factor (sf = 1.0 is the
    /// full 1 GB benchmark population; use small fractions).
    pub fn factor(sf: f64) -> Self {
        let f = |base: f64| ((base * sf).round() as usize).max(1);
        TpchScale {
            customers: f(150_000.0),
            suppliers: f(10_000.0),
            parts: f(200_000.0),
            orders_per_customer: 10,
            max_lineitems_per_order: 7,
        }
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const COLORS: [&str; 24] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "chartreuse",
    "chiffon",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "steel",
    "copper",
    "nickel",
    "brass",
    "tin",
    "bronze",
];
const TYPES_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPES_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPES_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PACK",
    "WRAP JAR",
];
const WORDS: [&str; 16] = [
    "furiously",
    "quickly",
    "carefully",
    "slyly",
    "blithely",
    "deposits",
    "accounts",
    "pending",
    "requests",
    "ideas",
    "foxes",
    "packages",
    "theodolites",
    "instructions",
    "platelets",
    "excuses",
];

fn comment(rng: &mut StdRng, max_words: usize) -> Value {
    let n = rng.random_range(2..=max_words.max(3));
    let words: Vec<&str> = (0..n)
        .map(|_| WORDS[rng.random_range(0..WORDS.len())])
        .collect();
    Value::from(words.join(" "))
}

fn date_in(rng: &mut StdRng, lo: i32, hi: i32) -> i32 {
    rng.random_range(lo..=hi)
}

/// Generate a full database at the given scale. Deterministic in `seed`.
/// Statistics are collected into the catalog before returning.
pub fn generate_tpch(scale: &TpchScale, seed: u64) -> (Database, TpchTables) {
    let (catalog, t) = tpch_catalog();
    let mut db = Database::new(catalog);
    let mut rng = StdRng::seed_from_u64(seed);

    // region
    let regions: Vec<Row> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::Int(i as i64),
                Value::from(name.to_string()),
                comment(&mut rng, 5),
            ]
        })
        .collect();
    db.load(t.region, regions);

    // nation
    let nations: Vec<Row> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::Int(i as i64),
                Value::from(name.to_string()),
                Value::Int((i % 5) as i64),
                comment(&mut rng, 5),
            ]
        })
        .collect();
    db.load(t.nation, nations);

    // supplier
    let suppliers: Vec<Row> = (1..=scale.suppliers as i64)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::from(format!("Supplier#{k:09}")),
                comment(&mut rng, 3),
                Value::Int(rng.random_range(0..25)),
                Value::from(format!(
                    "{}-{:03}-{:03}",
                    rng.random_range(10..35),
                    k % 1000,
                    k % 997
                )),
                Value::Int(rng.random_range(-99_999..1_000_000)), // acctbal in cents
                comment(&mut rng, 8),
            ]
        })
        .collect();
    db.load(t.supplier, suppliers);

    // customer
    let customers: Vec<Row> = (1..=scale.customers as i64)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::from(format!("Customer#{k:09}")),
                comment(&mut rng, 3),
                Value::Int(rng.random_range(0..25)),
                Value::from(format!(
                    "{}-{:03}-{:03}",
                    rng.random_range(10..35),
                    k % 1000,
                    k % 991
                )),
                Value::Int(rng.random_range(-99_999..1_000_000)),
                Value::from(SEGMENTS[rng.random_range(0..SEGMENTS.len())].to_string()),
                comment(&mut rng, 8),
            ]
        })
        .collect();
    db.load(t.customer, customers);

    // part: retail prices in cents, sizes 1..=50
    let mut part_price = Vec::with_capacity(scale.parts + 1);
    part_price.push(0i64); // index 0 unused
    let parts: Vec<Row> = (1..=scale.parts as i64)
        .map(|k| {
            let name: Vec<&str> = (0..3)
                .map(|_| COLORS[rng.random_range(0..COLORS.len())])
                .collect();
            let price = 90_000 + (k % 200) * 100 + rng.random_range(0..10_000);
            part_price.push(price);
            vec![
                Value::Int(k),
                Value::from(name.join(" ")),
                Value::from(format!("Manufacturer#{}", 1 + k % 5)),
                Value::from(format!("Brand#{}{}", 1 + k % 5, 1 + k % 4)),
                Value::from(format!(
                    "{} {} {}",
                    TYPES_1[rng.random_range(0..TYPES_1.len())],
                    TYPES_2[rng.random_range(0..TYPES_2.len())],
                    TYPES_3[rng.random_range(0..TYPES_3.len())]
                )),
                Value::Int(rng.random_range(1..=50)),
                Value::from(CONTAINERS[rng.random_range(0..CONTAINERS.len())].to_string()),
                Value::Int(price),
                comment(&mut rng, 5),
            ]
        })
        .collect();
    db.load(t.part, parts);

    // partsupp: up to 4 distinct suppliers per part.
    let per_part = 4.min(scale.suppliers);
    let mut ps_pairs: Vec<(i64, i64)> = Vec::new();
    let partsupps: Vec<Row> = (1..=scale.parts as i64)
        .flat_map(|p| {
            let mut supps: Vec<i64> = Vec::with_capacity(per_part);
            while supps.len() < per_part {
                let s = rng.random_range(1..=scale.suppliers as i64);
                if !supps.contains(&s) {
                    supps.push(s);
                }
            }
            supps
                .into_iter()
                .map(|s| {
                    ps_pairs.push((p, s));
                    vec![
                        Value::Int(p),
                        Value::Int(s),
                        Value::Int(rng.random_range(1..10_000)),
                        Value::Int(rng.random_range(100..100_000)),
                        comment(&mut rng, 5),
                    ]
                })
                .collect::<Vec<Row>>()
        })
        .collect();
    db.load(t.partsupp, partsupps);

    // orders + lineitem
    let start = days_from_date(1992, 1, 1);
    let end = days_from_date(1998, 8, 2);
    let n_orders = scale.customers * scale.orders_per_customer;
    let mut orders = Vec::with_capacity(n_orders);
    let mut lineitems: Vec<Row> = Vec::new();
    for ok in 1..=n_orders as i64 {
        let custkey = rng.random_range(1..=scale.customers as i64);
        let orderdate = date_in(&mut rng, start, end - 151);
        let n_lines = rng.random_range(1..=scale.max_lineitems_per_order);
        let mut totalprice = 0i64;
        for ln in 1..=n_lines as i64 {
            let (p, s) = ps_pairs[rng.random_range(0..ps_pairs.len())];
            let qty = rng.random_range(1..=50i64);
            let extended = qty * part_price[p as usize];
            totalprice += extended;
            let shipdate = orderdate + rng.random_range(1..=121);
            let commitdate = orderdate + rng.random_range(30..=90);
            let receiptdate = shipdate + rng.random_range(1..=30);
            lineitems.push(vec![
                Value::Int(ok),
                Value::Int(p),
                Value::Int(s),
                Value::Int(ln),
                Value::Int(qty),
                Value::Int(extended),
                Value::Int(rng.random_range(0..=10)), // discount in percent
                Value::Int(rng.random_range(0..=8)),  // tax in percent
                Value::from(["R", "A", "N"][rng.random_range(0..3)].to_string()),
                Value::from(["O", "F"][rng.random_range(0..2)].to_string()),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::from(INSTRUCTIONS[rng.random_range(0..INSTRUCTIONS.len())].to_string()),
                Value::from(SHIPMODES[rng.random_range(0..SHIPMODES.len())].to_string()),
                comment(&mut rng, 6),
            ]);
        }
        orders.push(vec![
            Value::Int(ok),
            Value::Int(custkey),
            Value::from(["O", "F", "P"][rng.random_range(0..3)].to_string()),
            Value::Int(totalprice),
            Value::Date(orderdate),
            Value::from(PRIORITIES[rng.random_range(0..PRIORITIES.len())].to_string()),
            Value::from(format!("Clerk#{:09}", rng.random_range(1..1000))),
            Value::Int(0),
            comment(&mut rng, 10),
        ]);
    }
    db.load(t.orders, orders);
    db.load(t.lineitem, lineitems);

    db.collect_stats();
    (db, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let (a, t) = generate_tpch(&TpchScale::tiny(), 42);
        let (b, _) = generate_tpch(&TpchScale::tiny(), 42);
        assert_eq!(a.rows(t.lineitem), b.rows(t.lineitem));
        assert_eq!(a.rows(t.orders), b.rows(t.orders));
        let (c, _) = generate_tpch(&TpchScale::tiny(), 43);
        assert_ne!(a.rows(t.lineitem), c.rows(t.lineitem));
    }

    #[test]
    fn row_counts_follow_scale() {
        let scale = TpchScale::tiny();
        let (db, t) = generate_tpch(&scale, 1);
        assert_eq!(db.row_count(t.region), 5);
        assert_eq!(db.row_count(t.nation), 25);
        assert_eq!(db.row_count(t.customer), scale.customers);
        assert_eq!(db.row_count(t.supplier), scale.suppliers);
        assert_eq!(db.row_count(t.part), scale.parts);
        assert_eq!(db.row_count(t.partsupp), scale.parts * 4);
        assert_eq!(
            db.row_count(t.orders),
            scale.customers * scale.orders_per_customer
        );
        assert!(db.row_count(t.lineitem) >= db.row_count(t.orders));
    }

    #[test]
    fn referential_integrity_holds() {
        let (db, _) = generate_tpch(&TpchScale::tiny(), 7);
        assert_eq!(db.check_foreign_keys(), 0);
    }

    #[test]
    fn primary_keys_unique() {
        use std::collections::HashSet;
        let (db, t) = generate_tpch(&TpchScale::tiny(), 7);
        for table in t.all() {
            let def = db.catalog.table(table);
            let Some(pk) = def.keys.first() else { continue };
            let mut seen = HashSet::new();
            for row in db.rows(table) {
                let key: Vec<_> = pk
                    .columns
                    .iter()
                    .map(|c| row[c.0 as usize].clone())
                    .collect();
                assert!(seen.insert(key), "duplicate PK in {}", def.name);
            }
        }
    }

    #[test]
    fn stats_are_collected() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 7);
        let stats = db.catalog.stats(t.lineitem).unwrap();
        assert_eq!(stats.rows as usize, db.row_count(t.lineitem));
        // l_quantity ndv is at most 50 and min/max within [1, 50].
        let qty = &stats.columns[4];
        assert!(qty.ndv <= 50);
        assert!(matches!(qty.min, Value::Int(v) if (1..=50).contains(&v)));
        // Dates look like dates.
        let ship = &stats.columns[10];
        assert!(matches!(ship.min, Value::Date(_)));
    }

    #[test]
    fn dates_are_ordered_sanely() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 9);
        let orders = db.rows(t.orders);
        for li in db.rows(t.lineitem) {
            let (Value::Int(ok), Value::Date(ship), Value::Date(receipt)) =
                (&li[0], &li[10], &li[12])
            else {
                panic!("bad lineitem row");
            };
            assert!(receipt > ship);
            let order = &orders[(*ok - 1) as usize];
            let Value::Date(odate) = &order[4] else {
                panic!("bad order date");
            };
            assert!(ship > odate);
        }
    }

    #[test]
    fn monetary_columns_are_integer_cents() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 11);
        for row in db.rows(t.lineitem) {
            assert!(matches!(row[5], Value::Int(_)), "extendedprice not Int");
        }
        for row in db.rows(t.part) {
            assert!(matches!(row[7], Value::Int(_)), "retailprice not Int");
        }
    }
}
