//! Micro-benchmarks for whole-query optimization with and without views —
//! the per-query version of the paper's Figure 2 measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_bench::{build_workload, engine_with};
use mv_core::MatchConfig;
use mv_optimizer::{Optimizer, OptimizerConfig};
use std::hint::black_box;

fn bench_optimize(c: &mut Criterion) {
    let workload = build_workload(1000, 30);
    let mut group = c.benchmark_group("optimize_30_queries");
    for &n in &[0usize, 100, 1000] {
        let engine = engine_with(&workload, n, MatchConfig::default());
        group.bench_with_input(BenchmarkId::new("views", n), &n, |b, _| {
            let optimizer = Optimizer::new(&engine, OptimizerConfig::default());
            b.iter(|| {
                for q in &workload.queries {
                    black_box(optimizer.optimize(q));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_optimize
}
criterion_main!(benches);
