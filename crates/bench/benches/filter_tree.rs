//! Micro-benchmarks for the filter tree and the lattice index: candidate
//! search with the tree versus a full scan of the view set, at several
//! view counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_bench::{build_workload, engine_with};
use mv_core::{ExprSummary, LatticeIndex, MatchConfig};
use std::hint::black_box;

fn bench_candidates(c: &mut Criterion) {
    let workload = build_workload(1000, 8);
    let mut group = c.benchmark_group("candidate_search");
    for &n in &[100usize, 400, 1000] {
        let with_tree = engine_with(&workload, n, MatchConfig::default());
        let without = engine_with(
            &workload,
            n,
            MatchConfig {
                use_filter_tree: false,
                ..MatchConfig::default()
            },
        );
        let queries: Vec<_> = workload.queries.iter().take(8).collect();
        group.bench_with_input(BenchmarkId::new("filter_tree", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    let qsum = ExprSummary::analyze(q);
                    black_box(with_tree.candidates(q, &qsum));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("full_scan_then_match", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(without.find_substitutes(q));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("filter_then_match", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(with_tree.find_substitutes(q));
                }
            })
        });
    }
    group.finish();
}

fn bench_lattice(c: &mut Criterion) {
    // A lattice of 1000 random small sets over a 64-token universe.
    let mut idx: LatticeIndex<u64, usize> = LatticeIndex::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..1000 {
        let len = (next() % 5 + 1) as usize;
        let key: Vec<u64> = (0..len).map(|_| next() % 64).collect();
        idx.insert(key, i);
    }
    let probe: Vec<u64> = vec![3, 17, 42, 55];
    c.bench_function("lattice_find_subsets_1000", |b| {
        b.iter(|| black_box(idx.find_subsets(black_box(&probe))))
    });
    c.bench_function("lattice_find_supersets_1000", |b| {
        b.iter(|| black_box(idx.find_supersets(black_box(&probe[..2]))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_candidates, bench_lattice
}
criterion_main!(benches);
