//! Micro-benchmarks for the matcher itself: summary analysis, a full
//! match that succeeds (with compensations), and one that fails early.

use criterion::{criterion_group, criterion_main, Criterion};
use mv_core::{matching::match_view, ExprSummary, MatchConfig};
use mv_expr::{BinOp, BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_plan::{NamedExpr, SpjgExpr, ViewDef, ViewId};
use std::hint::black_box;

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

/// The Example 2 pair: a three-table view and query with equality,
/// range and residual compensations.
fn example2() -> (SpjgExpr, SpjgExpr) {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let view_pred = BoolExpr::and(vec![
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        BoolExpr::col_eq(cr(0, 1), cr(2, 0)),
        BoolExpr::cmp(S::col(cr(2, 0)), CmpOp::Gt, S::lit(150i64)),
        BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Gt, S::lit(50i64)),
        BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Lt, S::lit(500i64)),
        BoolExpr::Like {
            expr: S::col(cr(2, 1)),
            pattern: "%abc%".into(),
            negated: false,
        },
    ]);
    let outs = |cols: &[(u32, u32)]| {
        cols.iter()
            .enumerate()
            .map(|(i, &(o, c))| NamedExpr::new(S::col(cr(o, c)), format!("c{i}")))
            .collect::<Vec<_>>()
    };
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.orders, t.part],
        view_pred,
        outs(&[(0, 0), (0, 1), (1, 1), (1, 4), (0, 10), (0, 4), (0, 5)]),
    );
    let query_pred = BoolExpr::and(vec![
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        BoolExpr::col_eq(cr(0, 1), cr(2, 0)),
        BoolExpr::col_eq(cr(1, 4), cr(0, 10)),
        BoolExpr::cmp(S::col(cr(2, 0)), CmpOp::Gt, S::lit(150i64)),
        BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Lt, S::lit(160i64)),
        BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Eq, S::lit(123i64)),
        BoolExpr::Like {
            expr: S::col(cr(2, 1)),
            pattern: "%abc%".into(),
            negated: false,
        },
        BoolExpr::cmp(
            S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5))),
            CmpOp::Gt,
            S::lit(100i64),
        ),
    ]);
    let query = SpjgExpr::spj(
        vec![t.lineitem, t.orders, t.part],
        query_pred,
        outs(&[(0, 0), (0, 1)]),
    );
    (query, view)
}

fn bench_matching(c: &mut Criterion) {
    let (cat, _) = mv_catalog::tpch::tpch_catalog();
    let (query, view_expr) = example2();
    let config = MatchConfig::default();
    let qsum = ExprSummary::analyze(&query);
    let vdef = ViewDef::new("v", view_expr.clone());
    let vsum = ExprSummary::analyze(&view_expr);

    c.bench_function("summary_analyze_3table", |b| {
        b.iter(|| ExprSummary::analyze(black_box(&query)))
    });

    c.bench_function("match_view_hit_with_compensation", |b| {
        b.iter(|| {
            match_view(
                black_box(&cat),
                &config,
                &query,
                &qsum,
                ViewId(0),
                &vdef,
                &vsum,
            )
        })
    });

    // A failing match: the view's range is too narrow (early rejection in
    // the range subsumption test).
    let mut narrow = view_expr.clone();
    for conj in &mut narrow.conjuncts {
        if let mv_expr::Conjunct::Range {
            op: CmpOp::Gt,
            value,
            ..
        } = conj
        {
            if *value == mv_catalog::Value::Int(50) {
                *value = mv_catalog::Value::Int(400);
            }
        }
    }
    let ndef = ViewDef::new("narrow", narrow.clone());
    let nsum = ExprSummary::analyze(&narrow);
    c.bench_function("match_view_miss_range", |b| {
        b.iter(|| {
            match_view(
                black_box(&cat),
                &config,
                &query,
                &qsum,
                ViewId(0),
                &ndef,
                &nsum,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_matching
}
criterion_main!(benches);
