//! Regenerate every figure and in-text statistic of the paper's
//! experimental section (section 5).
//!
//! ```text
//! cargo run -p mv-bench --release --bin figures -- all
//! cargo run -p mv-bench --release --bin figures -- fig2 [--queries N] [--max-views N]
//! ```
//!
//! Subcommands: `fig2`, `fig3`, `fig4`, `stats`, `ablation`, `all`.
//! Results print as markdown tables (ready to paste into EXPERIMENTS.md).

use mv_bench::{build_workload, engine_with, figure2_configs, run_pass, Workload};
use mv_core::MatchConfig;
use mv_optimizer::OptimizerConfig;

struct Args {
    command: String,
    queries: usize,
    max_views: usize,
    step: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        queries: 200,
        max_views: 1000,
        step: 100,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let numeric = |i: usize, flag: &str| -> usize {
        argv.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("{flag} requires a positive number");
                std::process::exit(2);
            })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--queries" => {
                args.queries = numeric(i, "--queries");
                i += 2;
            }
            "--max-views" => {
                args.max_views = numeric(i, "--max-views");
                i += 2;
            }
            "--step" => {
                args.step = numeric(i, "--step");
                i += 2;
            }
            cmd => {
                args.command = cmd.to_string();
                i += 1;
            }
        }
    }
    const COMMANDS: [&str; 6] = ["fig2", "fig3", "fig4", "stats", "ablation", "all"];
    if !COMMANDS.contains(&args.command.as_str()) {
        eprintln!(
            "unknown command {}; use {}",
            args.command,
            COMMANDS.join("|")
        );
        std::process::exit(2);
    }
    if args.step == 0 {
        eprintln!("--step must be at least 1");
        std::process::exit(2);
    }
    args
}

fn view_counts(args: &Args) -> Vec<usize> {
    let mut counts = vec![0];
    let mut n = args.step;
    while n <= args.max_views {
        counts.push(n);
        n += args.step;
    }
    counts
}

/// Figure 2: total optimization time vs number of views, four series.
fn fig2(w: &Workload, args: &Args) {
    println!(
        "\n## Figure 2: optimization time vs number of views ({} queries)\n",
        args.queries
    );
    println!("| views | Alt & Filter (s) | NoAlt & Filter (s) | Alt & NoFilter (s) | NoAlt & NoFilter (s) |");
    println!("|---|---|---|---|---|");
    for &n in &view_counts(args) {
        let mut row = format!("| {n} |");
        for (_, match_cfg, opt_cfg) in figure2_configs() {
            let engine = engine_with(w, n, match_cfg);
            let pass = run_pass(w, &engine, &opt_cfg);
            row.push_str(&format!(" {:.3} |", pass.total_time.as_secs_f64()));
        }
        println!("{row}");
    }
}

/// Figure 3: total increase in optimization time vs time spent inside the
/// view-matching rule (Alt & Filter).
fn fig3(w: &Workload, args: &Args) {
    println!("\n## Figure 3: optimization-time increase vs view-matching time\n");
    let baseline = {
        let engine = engine_with(w, 0, MatchConfig::default());
        run_pass(w, &engine, &OptimizerConfig::default())
            .total_time
            .as_secs_f64()
    };
    println!("baseline (0 views): {baseline:.3} s\n");
    println!(
        "| views | total increase (s) | view-matching time (s) | matching share of increase |"
    );
    println!("|---|---|---|---|");
    for &n in &view_counts(args) {
        if n == 0 {
            continue;
        }
        let engine = engine_with(w, n, MatchConfig::default());
        let pass = run_pass(w, &engine, &OptimizerConfig::default());
        let increase = pass.total_time.as_secs_f64() - baseline;
        let matching = pass.matching_time.as_secs_f64();
        let share = if increase > 0.0 {
            matching / increase
        } else {
            f64::NAN
        };
        println!("| {n} | {increase:.3} | {matching:.3} | {share:.2} |");
    }
}

/// Figure 4: number of final plans using materialized views.
fn fig4(w: &Workload, args: &Args) {
    println!(
        "\n## Figure 4: final plans using materialized views ({} queries)\n",
        args.queries
    );
    println!("| views | plans using views | fraction |");
    println!("|---|---|---|");
    for &n in &view_counts(args) {
        let engine = engine_with(w, n, MatchConfig::default());
        let pass = run_pass(w, &engine, &OptimizerConfig::default());
        println!(
            "| {n} | {} | {:.2} |",
            pass.plans_using_views,
            pass.plans_using_views as f64 / args.queries as f64
        );
    }
}

/// The in-text statistics of section 5.
fn stats(w: &Workload, args: &Args) {
    println!("\n## Section 5 in-text statistics\n");
    println!("| views | invocations/query | candidate fraction | candidates passing | subs/invocation | subs/query |");
    println!("|---|---|---|---|---|---|");
    for &n in &view_counts(args) {
        if n == 0 {
            continue;
        }
        let engine = engine_with(w, n, MatchConfig::default());
        let pass = run_pass(w, &engine, &OptimizerConfig::default());
        let inv_per_query = pass.invocations as f64 / args.queries as f64;
        let cand_frac = if pass.views_available > 0 {
            pass.candidates as f64 / pass.views_available as f64
        } else {
            0.0
        };
        let passing = if pass.candidates > 0 {
            pass.substitutes as f64 / pass.candidates as f64
        } else {
            0.0
        };
        println!(
            "| {n} | {:.1} | {:.4} | {:.3} | {:.3} | {:.2} |",
            inv_per_query,
            cand_frac,
            passing,
            pass.substitutes as f64 / pass.invocations as f64,
            pass.substitutes as f64 / args.queries as f64,
        );
    }
}

/// Ablations over the design choices called out in DESIGN.md.
fn ablation(w: &Workload, args: &Args) {
    println!(
        "\n## Ablations (at {} views)\n",
        args.max_views.min(w.views.len())
    );
    let n = args.max_views.min(w.views.len());
    let variants: Vec<(&str, MatchConfig)> = vec![
        ("default", MatchConfig::default()),
        (
            "no filter tree",
            MatchConfig {
                use_filter_tree: false,
                ..MatchConfig::default()
            },
        ),
        (
            "unrefined hubs",
            MatchConfig {
                refined_hubs: false,
                ..MatchConfig::default()
            },
        ),
        (
            "null-rejecting FK extension",
            MatchConfig {
                null_rejecting_fk: true,
                ..MatchConfig::default()
            },
        ),
        (
            "lenient expression filter",
            MatchConfig {
                strict_expression_filter: false,
                ..MatchConfig::default()
            },
        ),
        (
            "base-table backjoins",
            MatchConfig {
                allow_backjoins: true,
                ..MatchConfig::default()
            },
        ),
    ];
    println!("| variant | total time (s) | matching time (s) | candidate fraction | substitutes |");
    println!("|---|---|---|---|---|");
    for (name, cfg) in variants {
        let engine = engine_with(w, n, cfg);
        let pass = run_pass(w, &engine, &OptimizerConfig::default());
        let cand_frac = if pass.views_available > 0 {
            pass.candidates as f64 / pass.views_available as f64
        } else {
            0.0
        };
        println!(
            "| {name} | {:.3} | {:.3} | {:.4} | {} |",
            pass.total_time.as_secs_f64(),
            pass.matching_time.as_secs_f64(),
            cand_frac,
            pass.substitutes
        );
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "building workload: {} views, {} queries ...",
        args.max_views, args.queries
    );
    let w = build_workload(args.max_views, args.queries);
    match args.command.as_str() {
        "fig2" => fig2(&w, &args),
        "fig3" => fig3(&w, &args),
        "fig4" => fig4(&w, &args),
        "stats" => stats(&w, &args),
        "ablation" => ablation(&w, &args),
        "all" => {
            fig2(&w, &args);
            fig3(&w, &args);
            fig4(&w, &args);
            stats(&w, &args);
            ablation(&w, &args);
        }
        other => {
            eprintln!("unknown command {other}; use fig2|fig3|fig4|stats|ablation|all");
            std::process::exit(2);
        }
    }
}
