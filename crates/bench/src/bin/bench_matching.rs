//! Serial vs parallel view-matching throughput across view-set sizes,
//! persisted as a machine-readable trajectory at the repo root.
//!
//! ```text
//! cargo run -p mv-bench --release --bin bench_matching
//! ```
//!
//! appends to `BENCH_matching.json` a trajectory entry with one record
//! per (view count, mode, workload): view count, query count, worker
//! threads, p50/p95/p99 per-query match latency in microseconds, matching
//! throughput in queries/second, the filter-tree pruning ratio
//! (candidates examined / catalog size), and — for cache-enabled runs —
//! the substitute-cache hit rate. Earlier entries in the file are kept,
//! so the file accumulates a performance trajectory across runs; a file
//! in the pre-trajectory single-run format is absorbed as the first
//! entry. Serial records drive `find_substitutes` one query at a time on
//! an engine pinned to the serial path; parallel records drive
//! `find_substitutes_batch` over the same queries sharing the engine
//! across worker threads. Uniform-workload engines run with the
//! substitute cache off (the measurement loop repeats each query, which
//! would otherwise measure pure cache hits); the `zipf` records measure
//! exactly that repeated-template regime instead — a skewed stream over
//! ~50 query templates, cold (cache off) vs warm (default cache,
//! primed).
//!
//! ```text
//! cargo run -p mv-bench --release --bin bench_matching -- \
//!     [--sizes 100,1000,10000] [--queries N] [--threads N] [--out PATH]
//! ```

use mv_bench::{build_workload, engine_with, Workload};
use mv_core::{MatchConfig, MatchingEngine};
use std::time::{Duration, Instant};

struct Args {
    sizes: Vec<usize>,
    queries: usize,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![100, 1000, 10_000],
        queries: 200,
        threads: 0, // 0 = auto (available parallelism)
        out: concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json").to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} requires a value", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--sizes" => {
                args.sizes = value(i)
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--sizes takes a comma-separated list of view counts");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--queries" => {
                args.queries = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--queries requires a positive number");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                args.threads = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--threads requires a number (0 = auto)");
                    std::process::exit(2);
                });
            }
            "--out" => args.out = value(i),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.sizes.is_empty() || args.queries == 0 {
        eprintln!("--sizes and --queries must be non-empty");
        std::process::exit(2);
    }
    args
}

/// One measured (view count, mode, workload) record.
struct Record {
    views: usize,
    mode: &'static str,
    threads: usize,
    queries: usize,
    /// `uniform`: the full distinct-query list, cache off. `zipf-cold` /
    /// `zipf-warm`: the skewed repeated-template stream, cache off vs on.
    workload: &'static str,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    throughput_qps: f64,
    /// Filter-tree pruning ratio: candidates examined / views available,
    /// averaged over every `find_substitutes` call of the run (the paper
    /// reports ~0.3 % — §5.2).
    candidate_fraction: f64,
    /// Substitute-cache hit rate over the measured run; `None` when the
    /// cache is off.
    cache_hit_rate: Option<f64>,
}

fn percentile_us(latencies: &mut [Duration], q: f64) -> f64 {
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
    latencies[idx].as_secs_f64() * 1e6
}

/// Repetitions that keep one measurement loop around `target` wall-clock,
/// from a single calibration run.
fn calibrate_reps(once: Duration, target: Duration) -> usize {
    if once.is_zero() {
        return 1000;
    }
    (target.as_secs_f64() / once.as_secs_f64()).ceil() as usize
}

const MEASURE_TARGET: Duration = Duration::from_millis(300);

/// Drive `find_substitutes` one query at a time; per-query latencies and
/// end-to-end throughput.
fn run_serial(engine: &MatchingEngine, queries: &[mv_plan::SpjgExpr]) -> (Vec<Duration>, f64) {
    let once = {
        let t = Instant::now();
        for q in queries {
            std::hint::black_box(engine.find_substitutes(q));
        }
        t.elapsed()
    };
    let reps = calibrate_reps(once, MEASURE_TARGET);
    let mut latencies = Vec::with_capacity(queries.len() * reps);
    let started = Instant::now();
    for _ in 0..reps {
        for q in queries {
            let t = Instant::now();
            std::hint::black_box(engine.find_substitutes(q));
            latencies.push(t.elapsed());
        }
    }
    let total = started.elapsed();
    let qps = (queries.len() * reps) as f64 / total.as_secs_f64();
    (latencies, qps)
}

/// Drive `find_substitutes_batch` over the whole query list; throughput
/// from the batch entry point, latencies from an identically-shaped timed
/// fan-out over the same shared engine.
fn run_parallel(
    engine: &MatchingEngine,
    queries: &[mv_plan::SpjgExpr],
    workers: usize,
) -> (Vec<Duration>, f64) {
    let once = {
        let t = Instant::now();
        std::hint::black_box(engine.find_substitutes_batch(queries));
        t.elapsed()
    };
    let reps = calibrate_reps(once, MEASURE_TARGET);
    let started = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(engine.find_substitutes_batch(queries));
    }
    let total = started.elapsed();
    let qps = (queries.len() * reps) as f64 / total.as_secs_f64();
    let latencies = mv_parallel::par_map(queries, workers, |q| {
        let t = Instant::now();
        std::hint::black_box(engine.find_substitutes(q));
        t.elapsed()
    });
    (latencies, qps)
}

fn measure(w: &Workload, args: &Args, views: usize, workers: usize) -> (Record, Record) {
    // The serial engine never fans out, whatever the candidate count; the
    // parallel engine uses the default threshold plus the requested
    // worker cap for batch calls. Both run with the substitute cache off:
    // the measurement loop repeats each distinct query, so an enabled
    // cache would turn the uniform records into cache-hit benchmarks (the
    // zipf records measure that regime deliberately).
    let serial_cfg = MatchConfig {
        parallel_threshold: usize::MAX,
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    };
    let parallel_cfg = MatchConfig {
        parallel_workers: args.threads,
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    };

    let engine = engine_with(w, views, serial_cfg);
    let (mut lat, qps) = run_serial(&engine, &w.queries);
    let serial = Record {
        views,
        mode: "serial",
        threads: 1,
        queries: w.queries.len(),
        workload: "uniform",
        p50_us: percentile_us(&mut lat, 0.50),
        p95_us: percentile_us(&mut lat, 0.95),
        p99_us: percentile_us(&mut lat, 0.99),
        throughput_qps: qps,
        candidate_fraction: engine.stats().candidate_fraction(),
        cache_hit_rate: None,
    };

    let engine = engine_with(w, views, parallel_cfg);
    let (mut lat, qps) = run_parallel(&engine, &w.queries, workers);
    let parallel = Record {
        views,
        mode: "parallel",
        threads: workers,
        queries: w.queries.len(),
        workload: "uniform",
        p50_us: percentile_us(&mut lat, 0.50),
        p95_us: percentile_us(&mut lat, 0.95),
        p99_us: percentile_us(&mut lat, 0.99),
        throughput_qps: qps,
        candidate_fraction: engine.stats().candidate_fraction(),
        cache_hit_rate: None,
    };
    (serial, parallel)
}

/// Number of distinct query templates in the skewed stream.
const ZIPF_TEMPLATES: usize = 50;

/// Deterministic splitmix64 step — the standard 64-bit mixer, inlined so
/// the bench needs no external RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A zipf-like skewed stream of `len` queries drawn from the first
/// [`ZIPF_TEMPLATES`] workload queries with weight `1 / (rank + 1)` —
/// the repeated-template regime of a parameterized production workload,
/// where a handful of hot shapes dominate.
fn zipf_stream(w: &Workload, len: usize) -> Vec<mv_plan::SpjgExpr> {
    let templates = &w.queries[..ZIPF_TEMPLATES.min(w.queries.len())];
    let weights: Vec<f64> = (0..templates.len()).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state: u64 = 0x5EED_0F21_D15C_0B41;
    (0..len)
        .map(|_| {
            let mut x = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64 * total;
            let mut pick = templates.len() - 1;
            for (i, wgt) in weights.iter().enumerate() {
                if x < *wgt {
                    pick = i;
                    break;
                }
                x -= wgt;
            }
            templates[pick].clone()
        })
        .collect()
}

/// Measure the skewed repeated-template stream cold (cache off) and warm
/// (default cache, primed with one pass over the templates), serial path
/// both times so the two records differ only in the cache.
fn measure_zipf(w: &Workload, views: usize, stream: &[mv_plan::SpjgExpr]) -> (Record, Record) {
    let record = |mode: &'static str,
                  workload: &'static str,
                  lat: &mut [Duration],
                  qps: f64,
                  engine: &MatchingEngine,
                  hit_rate: Option<f64>| Record {
        views,
        mode,
        threads: 1,
        queries: stream.len(),
        workload,
        p50_us: percentile_us(lat, 0.50),
        p95_us: percentile_us(lat, 0.95),
        p99_us: percentile_us(lat, 0.99),
        throughput_qps: qps,
        candidate_fraction: engine.stats().candidate_fraction(),
        cache_hit_rate: hit_rate,
    };

    let cold_cfg = MatchConfig {
        parallel_threshold: usize::MAX,
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    };
    let engine = engine_with(w, views, cold_cfg);
    let (mut lat, qps) = run_serial(&engine, stream);
    let cold = record("serial", "zipf-cold", &mut lat, qps, &engine, None);

    let warm_cfg = MatchConfig {
        parallel_threshold: usize::MAX,
        ..MatchConfig::default()
    };
    let engine = engine_with(w, views, warm_cfg);
    for q in &w.queries[..ZIPF_TEMPLATES.min(w.queries.len())] {
        std::hint::black_box(engine.find_substitutes(q));
    }
    engine.reset_stats();
    let (mut lat, qps) = run_serial(&engine, stream);
    let hit_rate = engine.stats().cache_hit_rate();
    let warm = record(
        "serial",
        "zipf-warm",
        &mut lat,
        qps,
        &engine,
        Some(hit_rate),
    );
    (cold, warm)
}

/// One trajectory entry (this run), indented to sit inside the
/// `"trajectory"` array.
fn entry_json(records: &[Record], args: &Args, workers: usize) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("    {\n");
    out.push_str(&format!("      \"unix_time\": {unix_time},\n"));
    out.push_str(&format!("      \"queries\": {},\n", args.queries));
    out.push_str(&format!("      \"threads\": {workers},\n"));
    out.push_str("      \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let hit_rate = r
            .cache_hit_rate
            .map(|h| format!(", \"cache_hit_rate\": {h:.4}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "        {{\"views\": {}, \"mode\": \"{}\", \"workload\": \"{}\", \
             \"threads\": {}, \"queries\": {}, \
             \"p50_match_latency_us\": {:.2}, \"p95_match_latency_us\": {:.2}, \
             \"p99_match_latency_us\": {:.2}, \
             \"throughput_qps\": {:.1}, \"candidate_fraction\": {:.5}{}}}{}\n",
            r.views,
            r.mode,
            r.workload,
            r.threads,
            r.queries,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.throughput_qps,
            r.candidate_fraction,
            hit_rate,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }");
    out
}

/// The trajectory entries already in `old`, as one pre-indented JSON blob
/// (without the enclosing brackets), or `None` if the file holds nothing
/// salvageable. A file in the pre-trajectory format — a single top-level
/// object with a `"runs"` array — is kept whole as the first entry.
fn prior_entries(old: &str) -> Option<String> {
    const OPEN: &str = "\"trajectory\": [";
    if let Some(start) = old.find(OPEN) {
        let end = old.rfind("\n  ]")?;
        let blob = old.get(start + OPEN.len()..end)?.trim_matches('\n');
        if blob.trim().is_empty() {
            None
        } else {
            Some(blob.to_string())
        }
    } else if old.trim_start().starts_with('{') && old.contains("\"runs\"") {
        let indented: Vec<String> = old.trim().lines().map(|l| format!("    {l}")).collect();
        Some(indented.join("\n"))
    } else {
        None
    }
}

/// The full trajectory document: header plus all entries, oldest first.
fn trajectory_json(prior: Option<String>, entry: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"view-matching serial vs parallel\",\n");
    out.push_str("  \"command\": \"cargo run -p mv-bench --release --bin bench_matching\",\n");
    out.push_str("  \"trajectory\": [\n");
    if let Some(blob) = prior {
        out.push_str(&blob);
        out.push_str(",\n");
    }
    out.push_str(entry);
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let max_views = args.sizes.iter().copied().max().unwrap();
    let workers = if args.threads == 0 {
        mv_parallel::workers_for(usize::MAX)
    } else {
        args.threads
    };
    eprintln!(
        "building workload: {max_views} views, {} queries ...",
        args.queries
    );
    let w = build_workload(max_views, args.queries);

    let stream = zipf_stream(&w, args.queries);

    let mut records = Vec::new();
    println!(
        "| views | workload | mode | threads | p50 (us) | p95 (us) | p99 (us) | \
         throughput (q/s) | cand. frac | hit rate | speedup |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    let print_record = |r: &Record, speedup: Option<f64>| {
        println!(
            "| {} | {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.0} | {:.3}% | {} | {} |",
            r.views,
            r.workload,
            r.mode,
            r.threads,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.throughput_qps,
            r.candidate_fraction * 100.0,
            r.cache_hit_rate
                .map(|h| format!("{:.1}%", h * 100.0))
                .unwrap_or_else(|| "-".to_string()),
            speedup
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
        );
    };
    for &views in &args.sizes {
        let (serial, parallel) = measure(&w, &args, views, workers);
        let speedup = parallel.throughput_qps / serial.throughput_qps;
        if parallel.throughput_qps < serial.throughput_qps {
            eprintln!(
                "note: at {views} views the parallel batch path ({:.0} q/s) loses to the \
                 serial path ({:.0} q/s) — per-query matching is too cheap here for the \
                 fan-out to amortize thread spawn and result assembly; the engine's \
                 parallel_threshold/worker floor exists for exactly this regime",
                parallel.throughput_qps, serial.throughput_qps
            );
        }
        print_record(&serial, None);
        print_record(&parallel, Some(speedup));
        records.push(serial);
        records.push(parallel);

        let (cold, warm) = measure_zipf(&w, views, &stream);
        let warm_speedup = warm.throughput_qps / cold.throughput_qps;
        print_record(&cold, None);
        print_record(&warm, Some(warm_speedup));
        records.push(cold);
        records.push(warm);
    }

    let entry = entry_json(&records, &args, workers);
    let prior = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|old| prior_entries(&old));
    let appended = prior.is_some();
    let body = trajectory_json(prior, &entry);
    std::fs::write(&args.out, &body).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    eprintln!(
        "{} {}",
        if appended { "appended to" } else { "wrote" },
        args.out
    );
}
