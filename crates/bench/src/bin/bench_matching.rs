//! Serial vs parallel view-matching throughput across view-set sizes,
//! persisted as a machine-readable trajectory at the repo root.
//!
//! ```text
//! cargo run -p mv-bench --release --bin bench_matching
//! ```
//!
//! appends to `BENCH_matching.json` a trajectory entry with one record
//! per (view count, mode): view count, query count, worker threads,
//! p50/p95 per-query match latency in microseconds, matching throughput
//! in queries/second, and the filter-tree pruning ratio (candidates
//! examined / catalog size). Earlier entries in the file are kept, so
//! the file accumulates a performance trajectory across runs; a file in
//! the pre-trajectory single-run format is absorbed as the first entry.
//! Serial records drive `find_substitutes` one query at a time on an
//! engine pinned to the serial path; parallel records drive
//! `find_substitutes_batch` over the same queries sharing the engine
//! across worker threads.
//!
//! ```text
//! cargo run -p mv-bench --release --bin bench_matching -- \
//!     [--sizes 100,1000,10000] [--queries N] [--threads N] [--out PATH]
//! ```

use mv_bench::{build_workload, engine_with, Workload};
use mv_core::{MatchConfig, MatchingEngine};
use std::time::{Duration, Instant};

struct Args {
    sizes: Vec<usize>,
    queries: usize,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![100, 1000, 10_000],
        queries: 200,
        threads: 0, // 0 = auto (available parallelism)
        out: concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json").to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} requires a value", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--sizes" => {
                args.sizes = value(i)
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--sizes takes a comma-separated list of view counts");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--queries" => {
                args.queries = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--queries requires a positive number");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                args.threads = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--threads requires a number (0 = auto)");
                    std::process::exit(2);
                });
            }
            "--out" => args.out = value(i),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.sizes.is_empty() || args.queries == 0 {
        eprintln!("--sizes and --queries must be non-empty");
        std::process::exit(2);
    }
    args
}

/// One measured (view count, mode) record.
struct Record {
    views: usize,
    mode: &'static str,
    threads: usize,
    queries: usize,
    p50_us: f64,
    p95_us: f64,
    throughput_qps: f64,
    /// Filter-tree pruning ratio: candidates examined / views available,
    /// averaged over every `find_substitutes` call of the run (the paper
    /// reports ~0.3 % — §5.2).
    candidate_fraction: f64,
}

fn percentile_us(latencies: &mut [Duration], q: f64) -> f64 {
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
    latencies[idx].as_secs_f64() * 1e6
}

/// Repetitions that keep one measurement loop around `target` wall-clock,
/// from a single calibration run.
fn calibrate_reps(once: Duration, target: Duration) -> usize {
    if once.is_zero() {
        return 1000;
    }
    (target.as_secs_f64() / once.as_secs_f64()).ceil() as usize
}

const MEASURE_TARGET: Duration = Duration::from_millis(300);

/// Drive `find_substitutes` one query at a time; per-query latencies and
/// end-to-end throughput.
fn run_serial(engine: &MatchingEngine, queries: &[mv_plan::SpjgExpr]) -> (Vec<Duration>, f64) {
    let once = {
        let t = Instant::now();
        for q in queries {
            std::hint::black_box(engine.find_substitutes(q));
        }
        t.elapsed()
    };
    let reps = calibrate_reps(once, MEASURE_TARGET);
    let mut latencies = Vec::with_capacity(queries.len() * reps);
    let started = Instant::now();
    for _ in 0..reps {
        for q in queries {
            let t = Instant::now();
            std::hint::black_box(engine.find_substitutes(q));
            latencies.push(t.elapsed());
        }
    }
    let total = started.elapsed();
    let qps = (queries.len() * reps) as f64 / total.as_secs_f64();
    (latencies, qps)
}

/// Drive `find_substitutes_batch` over the whole query list; throughput
/// from the batch entry point, latencies from an identically-shaped timed
/// fan-out over the same shared engine.
fn run_parallel(
    engine: &MatchingEngine,
    queries: &[mv_plan::SpjgExpr],
    workers: usize,
) -> (Vec<Duration>, f64) {
    let once = {
        let t = Instant::now();
        std::hint::black_box(engine.find_substitutes_batch(queries));
        t.elapsed()
    };
    let reps = calibrate_reps(once, MEASURE_TARGET);
    let started = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(engine.find_substitutes_batch(queries));
    }
    let total = started.elapsed();
    let qps = (queries.len() * reps) as f64 / total.as_secs_f64();
    let latencies = mv_parallel::par_map(queries, workers, |q| {
        let t = Instant::now();
        std::hint::black_box(engine.find_substitutes(q));
        t.elapsed()
    });
    (latencies, qps)
}

fn measure(w: &Workload, args: &Args, views: usize, workers: usize) -> (Record, Record) {
    // The serial engine never fans out, whatever the candidate count; the
    // parallel engine uses the default threshold plus the requested
    // worker cap for batch calls.
    let serial_cfg = MatchConfig {
        parallel_threshold: usize::MAX,
        ..MatchConfig::default()
    };
    let parallel_cfg = MatchConfig {
        parallel_workers: args.threads,
        ..MatchConfig::default()
    };

    let engine = engine_with(w, views, serial_cfg);
    let (mut lat, qps) = run_serial(&engine, &w.queries);
    let serial = Record {
        views,
        mode: "serial",
        threads: 1,
        queries: w.queries.len(),
        p50_us: percentile_us(&mut lat, 0.50),
        p95_us: percentile_us(&mut lat, 0.95),
        throughput_qps: qps,
        candidate_fraction: engine.stats().candidate_fraction(),
    };

    let engine = engine_with(w, views, parallel_cfg);
    let (mut lat, qps) = run_parallel(&engine, &w.queries, workers);
    let parallel = Record {
        views,
        mode: "parallel",
        threads: workers,
        queries: w.queries.len(),
        p50_us: percentile_us(&mut lat, 0.50),
        p95_us: percentile_us(&mut lat, 0.95),
        throughput_qps: qps,
        candidate_fraction: engine.stats().candidate_fraction(),
    };
    (serial, parallel)
}

/// One trajectory entry (this run), indented to sit inside the
/// `"trajectory"` array.
fn entry_json(records: &[Record], args: &Args, workers: usize) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("    {\n");
    out.push_str(&format!("      \"unix_time\": {unix_time},\n"));
    out.push_str(&format!("      \"queries\": {},\n", args.queries));
    out.push_str(&format!("      \"threads\": {workers},\n"));
    out.push_str("      \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"views\": {}, \"mode\": \"{}\", \"threads\": {}, \"queries\": {}, \
             \"p50_match_latency_us\": {:.2}, \"p95_match_latency_us\": {:.2}, \
             \"throughput_qps\": {:.1}, \"candidate_fraction\": {:.5}}}{}\n",
            r.views,
            r.mode,
            r.threads,
            r.queries,
            r.p50_us,
            r.p95_us,
            r.throughput_qps,
            r.candidate_fraction,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }");
    out
}

/// The trajectory entries already in `old`, as one pre-indented JSON blob
/// (without the enclosing brackets), or `None` if the file holds nothing
/// salvageable. A file in the pre-trajectory format — a single top-level
/// object with a `"runs"` array — is kept whole as the first entry.
fn prior_entries(old: &str) -> Option<String> {
    const OPEN: &str = "\"trajectory\": [";
    if let Some(start) = old.find(OPEN) {
        let end = old.rfind("\n  ]")?;
        let blob = old.get(start + OPEN.len()..end)?.trim_matches('\n');
        if blob.trim().is_empty() {
            None
        } else {
            Some(blob.to_string())
        }
    } else if old.trim_start().starts_with('{') && old.contains("\"runs\"") {
        let indented: Vec<String> = old.trim().lines().map(|l| format!("    {l}")).collect();
        Some(indented.join("\n"))
    } else {
        None
    }
}

/// The full trajectory document: header plus all entries, oldest first.
fn trajectory_json(prior: Option<String>, entry: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"view-matching serial vs parallel\",\n");
    out.push_str("  \"command\": \"cargo run -p mv-bench --release --bin bench_matching\",\n");
    out.push_str("  \"trajectory\": [\n");
    if let Some(blob) = prior {
        out.push_str(&blob);
        out.push_str(",\n");
    }
    out.push_str(entry);
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let max_views = args.sizes.iter().copied().max().unwrap();
    let workers = if args.threads == 0 {
        mv_parallel::workers_for(usize::MAX)
    } else {
        args.threads
    };
    eprintln!(
        "building workload: {max_views} views, {} queries ...",
        args.queries
    );
    let w = build_workload(max_views, args.queries);

    let mut records = Vec::new();
    println!(
        "| views | mode | threads | p50 (us) | p95 (us) | throughput (q/s) | cand. frac | speedup |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for &views in &args.sizes {
        let (serial, parallel) = measure(&w, &args, views, workers);
        let speedup = parallel.throughput_qps / serial.throughput_qps;
        for r in [&serial, &parallel] {
            println!(
                "| {} | {} | {} | {:.1} | {:.1} | {:.0} | {:.3}% | {} |",
                r.views,
                r.mode,
                r.threads,
                r.p50_us,
                r.p95_us,
                r.throughput_qps,
                r.candidate_fraction * 100.0,
                if r.mode == "parallel" {
                    format!("{speedup:.2}x")
                } else {
                    "-".to_string()
                }
            );
        }
        records.push(serial);
        records.push(parallel);
    }

    let entry = entry_json(&records, &args, workers);
    let prior = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|old| prior_entries(&old));
    let appended = prior.is_some();
    let body = trajectory_json(prior, &entry);
    std::fs::write(&args.out, &body).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    eprintln!(
        "{} {}",
        if appended { "appended to" } else { "wrote" },
        args.out
    );
}
