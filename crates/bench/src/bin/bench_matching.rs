//! Serial vs parallel view-matching throughput across view-set sizes,
//! persisted as a machine-readable trajectory at the repo root.
//!
//! ```text
//! cargo run -p mv-bench --release --bin bench_matching
//! ```
//!
//! appends to `BENCH_matching.json` a trajectory entry with one record
//! per (view count, mode, workload): view count, query count, worker
//! threads, p50/p95/p99 per-query match latency in microseconds, matching
//! throughput in queries/second, the filter-tree pruning ratio
//! (candidates examined / catalog size), and the substitute-cache hit
//! rate (`null` for cache-off runs). Earlier entries in the file are
//! kept, so the file accumulates a performance trajectory across runs —
//! and because earlier revisions of this bench emitted drifted field
//! sets, every prior entry is re-parsed and migrated to the current
//! uniform schema on append (missing `unix_time` becomes 0, redundant
//! per-entry header fields are dropped, missing run fields become `null`
//! or their documented defaults), so every row of the written file parses
//! identically. A file in the pre-trajectory single-run format is
//! absorbed as the first entry.
//!
//! Serial records drive `find_substitutes` one query at a time on an
//! engine pinned to the serial path; parallel records drive
//! `find_substitutes_batch` over the same queries sharing the engine
//! across worker threads. Uniform-workload engines run with the
//! substitute cache off (the measurement loop repeats each query, which
//! would otherwise measure pure cache hits); the `zipf` records measure
//! exactly that repeated-template regime instead — a skewed stream over
//! ~50 query templates, cold (cache off) vs warm (default cache,
//! primed). The `zipf-churn` record is the online-catalog measurement:
//! matcher threads replay the warm skewed stream while a registration
//! thread concurrently adds views over a table disjoint from every
//! template, so per-table cache invalidation must leave the warm entries
//! alone — the record carries throughput under churn and the retained
//! hit rate (the engine's global-epoch ancestor scored ~0% here).
//!
//! ```text
//! cargo run -p mv-bench --release --bin bench_matching -- \
//!     [--sizes 100,1000,10000,100000] [--queries N] [--threads N] \
//!     [--out PATH] [--strict] [--prove-smoke N]
//! ```
//!
//! `--prove-smoke N` additionally runs the `mv-prove` bounded
//! equivalence checker over the first N substitutes the matcher
//! produces at the largest scale point (k=2) and records the outcome
//! counts and wall time in the trajectory entry's `note` field, so the
//! prove cost rides along with the matching trajectory.
//!
//! Every run also emits one `mode: "maintain"` / `workload:
//! "churn-writes"` row: the views (capped at 1000) are registered with
//! the `mv-maintain` incremental-maintenance driver over tiny generated
//! data, insert/delete delta rounds stream through the base tables, and
//! the row records the mean maintenance cost per delta
//! (`maintain_us_per_delta`, the `apply_with_engine` wall clock) and the
//! fraction of substitutes served with a `Fresh` stamp when the skewed
//! query stream replays right after each maintenance round
//! (`fresh_serving_rate` — recompute-fallback views are stale at that
//! point and drag the rate below 1.0 honestly; they refresh between
//! rounds). Under `--strict`, `maintain_us_per_delta` ratchets against
//! the best prior maintain row at the same scale (2x tolerance).
//!
//! Each scale point also emits a `batched` record driving
//! `find_substitutes_many` over the skewed stream (cache off): the
//! duplicate-heavy batch forms fingerprint groups, so the record
//! measures what one-snapshot-pin, one-descent-per-group batching buys
//! over the serial cold stream. Uniform-serial rows additionally carry
//! `rss_bytes_per_view` (resident-set growth of the bulk registration,
//! Linux only) and `bytes_per_view_arena` (the packed descriptor
//! arena's deterministic share); both are `null` on rows that do not
//! measure registration.
//!
//! `--strict` turns the built-in regression assertions into the exit
//! code: the run fails if the parallel auto mode regresses serial
//! throughput by more than 10 % at any scale point, if the warm hit
//! rate retained across the disjoint-table churn drops below 90 %, or
//! — ratcheting against the best prior trajectory entry at the same
//! scale — if memory per view (arena or RSS) exceeds 1.25x the prior
//! best or the serial p50 exceeds 2x the prior best.

use mv_bench::json::Json;
use mv_bench::{build_workload, engine_with, Workload, DATA_SEED};
use mv_catalog::TableId;
use mv_core::{MatchConfig, MatchingEngine};
use mv_data::{generate_tpch, TpchScale};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_maintain::{MaintainStrategy, Maintainer, TableDelta};
use mv_plan::{NamedExpr, SpjgExpr, ViewDef};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct Args {
    sizes: Vec<usize>,
    queries: usize,
    threads: usize,
    out: String,
    strict: bool,
    prove_smoke: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![100, 1000, 10_000, 100_000],
        queries: 200,
        threads: 0, // 0 = auto (available parallelism)
        out: concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json").to_string(),
        strict: false,
        prove_smoke: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} requires a value", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--sizes" => {
                args.sizes = value(i)
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--sizes takes a comma-separated list of view counts");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                i += 2;
            }
            "--queries" => {
                args.queries = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--queries requires a positive number");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--threads" => {
                args.threads = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--threads requires a number (0 = auto)");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out" => {
                args.out = value(i);
                i += 2;
            }
            "--strict" => {
                args.strict = true;
                i += 1;
            }
            "--prove-smoke" => {
                args.prove_smoke = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--prove-smoke requires a number of substitutes");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if args.sizes.is_empty() || args.queries == 0 {
        eprintln!("--sizes and --queries must be non-empty");
        std::process::exit(2);
    }
    args
}

/// One measured (view count, mode, workload) record.
struct Record {
    views: usize,
    mode: &'static str,
    threads: usize,
    queries: usize,
    /// `uniform`: the full distinct-query list, cache off. `zipf-cold` /
    /// `zipf-warm`: the skewed repeated-template stream, cache off vs on.
    /// `zipf-churn`: the warm stream with a concurrent registration
    /// thread churning a disjoint table.
    workload: &'static str,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    throughput_qps: f64,
    /// Filter-tree pruning ratio: candidates examined / views available,
    /// averaged over every `find_substitutes` call of the run (the paper
    /// reports ~0.3 % — §5.2).
    candidate_fraction: f64,
    /// Substitute-cache hit rate over the measured run; `None` when the
    /// cache is off.
    cache_hit_rate: Option<f64>,
    /// Resident-set growth of registering the catalog, per view (from
    /// `/proc/self/status`; `None` off Linux or on non-registration
    /// rows). Carried by the uniform-serial row of each scale point.
    rss_bytes_per_view: Option<f64>,
    /// Packed-descriptor arena footprint per view
    /// (`MatchingEngine::arena_bytes` / views) — deterministic, unlike
    /// RSS, so the strict memory gate leans on it.
    bytes_per_view_arena: Option<f64>,
}

/// Current VmRSS in bytes, `None` where `/proc` is unavailable.
fn rss_bytes() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: f64 = line
        .trim_start_matches("VmRSS:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024.0)
}

fn percentile_us(latencies: &mut [Duration], q: f64) -> f64 {
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
    latencies[idx].as_secs_f64() * 1e6
}

/// Repetitions that keep one measurement loop around `target` wall-clock,
/// from a single calibration run.
fn calibrate_reps(once: Duration, target: Duration) -> usize {
    if once.is_zero() {
        return 1000;
    }
    (target.as_secs_f64() / once.as_secs_f64()).ceil() as usize
}

const MEASURE_TARGET: Duration = Duration::from_millis(300);

/// Drive `find_substitutes` one query at a time; per-query latencies and
/// end-to-end throughput.
fn run_serial(engine: &MatchingEngine, queries: &[SpjgExpr]) -> (Vec<Duration>, f64) {
    let once = {
        let t = Instant::now();
        for q in queries {
            std::hint::black_box(engine.find_substitutes(q));
        }
        t.elapsed()
    };
    let reps = calibrate_reps(once, MEASURE_TARGET);
    let mut latencies = Vec::with_capacity(queries.len() * reps);
    let started = Instant::now();
    for _ in 0..reps {
        for q in queries {
            let t = Instant::now();
            std::hint::black_box(engine.find_substitutes(q));
            latencies.push(t.elapsed());
        }
    }
    let total = started.elapsed();
    let qps = (queries.len() * reps) as f64 / total.as_secs_f64();
    (latencies, qps)
}

/// Drive `find_substitutes_batch` over the whole query list; throughput
/// from the batch entry point, latencies from an identically-shaped timed
/// fan-out over the same shared engine.
fn run_parallel(
    engine: &MatchingEngine,
    queries: &[SpjgExpr],
    workers: usize,
) -> (Vec<Duration>, f64) {
    let once = {
        let t = Instant::now();
        std::hint::black_box(engine.find_substitutes_batch(queries));
        t.elapsed()
    };
    let reps = calibrate_reps(once, MEASURE_TARGET);
    let started = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(engine.find_substitutes_batch(queries));
    }
    let total = started.elapsed();
    let qps = (queries.len() * reps) as f64 / total.as_secs_f64();
    let latencies = mv_parallel::par_map(queries, workers, |q| {
        let t = Instant::now();
        std::hint::black_box(engine.find_substitutes(q));
        t.elapsed()
    });
    (latencies, qps)
}

fn measure(w: &Workload, args: &Args, views: usize, workers: usize) -> (Record, Record) {
    // The serial engine never fans out, whatever the candidate count; the
    // parallel engine uses the default threshold plus the requested
    // worker cap for batch calls. Both run with the substitute cache off:
    // the measurement loop repeats each distinct query, so an enabled
    // cache would turn the uniform records into cache-hit benchmarks (the
    // zipf records measure that regime deliberately).
    let serial_cfg = MatchConfig {
        parallel_threshold: usize::MAX,
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    };
    let parallel_cfg = MatchConfig {
        parallel_workers: args.threads,
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    };

    // Registration cost per view: RSS growth around the bulk add (noisy,
    // allocator-reuse-dependent, but what an operator sees) plus the
    // deterministic packed-arena share.
    let rss_before = rss_bytes();
    let engine = engine_with(w, views, serial_cfg);
    let rss_per_view = rss_before
        .zip(rss_bytes())
        .map(|(before, after)| ((after - before).max(0.0)) / views as f64);
    let arena_per_view = Some(engine.arena_bytes() as f64 / views as f64);
    let (mut lat, qps) = run_serial(&engine, &w.queries);
    let serial = Record {
        views,
        mode: "serial",
        threads: 1,
        queries: w.queries.len(),
        workload: "uniform",
        p50_us: percentile_us(&mut lat, 0.50),
        p95_us: percentile_us(&mut lat, 0.95),
        p99_us: percentile_us(&mut lat, 0.99),
        throughput_qps: qps,
        candidate_fraction: engine.stats().candidate_fraction(),
        cache_hit_rate: None,
        rss_bytes_per_view: rss_per_view,
        bytes_per_view_arena: arena_per_view,
    };

    let engine = engine_with(w, views, parallel_cfg);
    let (mut lat, qps) = run_parallel(&engine, &w.queries, workers);
    let parallel = Record {
        views,
        mode: "parallel",
        threads: workers,
        queries: w.queries.len(),
        workload: "uniform",
        p50_us: percentile_us(&mut lat, 0.50),
        p95_us: percentile_us(&mut lat, 0.95),
        p99_us: percentile_us(&mut lat, 0.99),
        throughput_qps: qps,
        candidate_fraction: engine.stats().candidate_fraction(),
        cache_hit_rate: None,
        rss_bytes_per_view: None,
        bytes_per_view_arena: arena_per_view,
    };
    (serial, parallel)
}

/// Drive `find_substitutes_many` over the skewed stream, cache off: the
/// duplicate-heavy batch makes real fingerprint groups, so the record
/// measures the amortization the batched entry point buys (one snapshot
/// pin, one tree descent per group). Per-query latency is the batch
/// wall-clock divided evenly — individual queries are not timed inside
/// the batch — so the percentiles describe batch-call variance.
fn measure_batched(w: &Workload, views: usize, stream: &[SpjgExpr], workers: usize) -> Record {
    let cfg = MatchConfig {
        parallel_workers: workers,
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    };
    let engine = engine_with(w, views, cfg);
    let once = {
        let t = Instant::now();
        std::hint::black_box(engine.find_substitutes_many(stream));
        t.elapsed()
    };
    let reps = calibrate_reps(once, MEASURE_TARGET);
    let mut per_query = Vec::with_capacity(reps);
    let started = Instant::now();
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(engine.find_substitutes_many(stream));
        per_query.push(t.elapsed() / stream.len() as u32);
    }
    let total = started.elapsed();
    Record {
        views,
        mode: "batched",
        threads: workers,
        queries: stream.len(),
        workload: "zipf-cold",
        p50_us: percentile_us(&mut per_query, 0.50),
        p95_us: percentile_us(&mut per_query, 0.95),
        p99_us: percentile_us(&mut per_query, 0.99),
        throughput_qps: (stream.len() * reps) as f64 / total.as_secs_f64(),
        candidate_fraction: engine.stats().candidate_fraction(),
        cache_hit_rate: None,
        rss_bytes_per_view: None,
        bytes_per_view_arena: Some(engine.arena_bytes() as f64 / views as f64),
    }
}

/// Number of distinct query templates in the skewed stream.
const ZIPF_TEMPLATES: usize = 50;

/// Views the registration thread adds during the churn measurement.
const CHURN_VIEWS: usize = 48;

/// Matcher threads racing the registration thread.
const CHURN_MATCHERS: usize = 2;

/// Deterministic splitmix64 step — the standard 64-bit mixer, inlined so
/// the bench needs no external RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A zipf-like skewed stream of `len` queries drawn from `templates`
/// with weight `1 / (rank + 1)` — the repeated-template regime of a
/// parameterized production workload, where a handful of hot shapes
/// dominate.
fn zipf_stream(templates: &[SpjgExpr], len: usize) -> Vec<SpjgExpr> {
    let weights: Vec<f64> = (0..templates.len()).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state: u64 = 0x5EED_0F21_D15C_0B41;
    (0..len)
        .map(|_| {
            let mut x = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64 * total;
            let mut pick = templates.len() - 1;
            for (i, wgt) in weights.iter().enumerate() {
                if x < *wgt {
                    pick = i;
                    break;
                }
                x -= wgt;
            }
            templates[pick].clone()
        })
        .collect()
}

/// Measure the skewed repeated-template stream cold (cache off) and warm
/// (default cache, primed with one pass over the templates), serial path
/// both times so the two records differ only in the cache.
fn measure_zipf(w: &Workload, views: usize, stream: &[SpjgExpr]) -> (Record, Record) {
    let record = |mode: &'static str,
                  workload: &'static str,
                  lat: &mut [Duration],
                  qps: f64,
                  engine: &MatchingEngine,
                  hit_rate: Option<f64>| Record {
        views,
        mode,
        threads: 1,
        queries: stream.len(),
        workload,
        p50_us: percentile_us(lat, 0.50),
        p95_us: percentile_us(lat, 0.95),
        p99_us: percentile_us(lat, 0.99),
        throughput_qps: qps,
        candidate_fraction: engine.stats().candidate_fraction(),
        cache_hit_rate: hit_rate,
        rss_bytes_per_view: None,
        bytes_per_view_arena: Some(engine.arena_bytes() as f64 / views as f64),
    };

    let cold_cfg = MatchConfig {
        parallel_threshold: usize::MAX,
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    };
    let engine = engine_with(w, views, cold_cfg);
    let (mut lat, qps) = run_serial(&engine, stream);
    let cold = record("serial", "zipf-cold", &mut lat, qps, &engine, None);

    let warm_cfg = MatchConfig {
        parallel_threshold: usize::MAX,
        ..MatchConfig::default()
    };
    let engine = engine_with(w, views, warm_cfg);
    for q in &w.queries[..ZIPF_TEMPLATES.min(w.queries.len())] {
        std::hint::black_box(engine.find_substitutes(q));
    }
    engine.reset_stats();
    let (mut lat, qps) = run_serial(&engine, stream);
    let hit_rate = engine.stats().cache_hit_rate();
    let warm = record(
        "serial",
        "zipf-warm",
        &mut lat,
        qps,
        &engine,
        Some(hit_rate),
    );
    (cold, warm)
}

/// Pick a churn table plus zipf templates disjoint from it: the table the
/// workload's queries reference least, and the first [`ZIPF_TEMPLATES`]
/// queries that never touch it. Registering views over that table while
/// those templates sit warm in the cache is exactly the disjoint-write
/// case per-table invalidation must not evict. Returns the templates and
/// the views the registration thread will add; `None` if every query
/// references every table (impossible for any real workload, but the
/// bench degrades gracefully rather than panicking).
fn churn_setup(w: &Workload) -> Option<(Vec<SpjgExpr>, Vec<ViewDef>)> {
    let n_tables = w.catalog.table_count();
    let mut refs = vec![0usize; n_tables];
    for q in &w.queries {
        let mut seen = vec![false; n_tables];
        for t in &q.tables {
            let i = t.0 as usize;
            if !seen[i] {
                seen[i] = true;
                refs[i] += 1;
            }
        }
    }
    let table = TableId(refs.iter().enumerate().min_by_key(|(_, c)| **c)?.0 as u32);
    let templates: Vec<SpjgExpr> = w
        .queries
        .iter()
        .filter(|q| !q.tables.contains(&table))
        .take(ZIPF_TEMPLATES)
        .cloned()
        .collect();
    if templates.is_empty() {
        return None;
    }
    // Column 0 exists in every TPC-H table; vary the range bound so each
    // registration is a distinct view over the churn table.
    let views = (0..CHURN_VIEWS)
        .map(|k| {
            let expr = SpjgExpr::spj(
                vec![table],
                BoolExpr::cmp(S::col(ColRef::new(0, 0)), CmpOp::Ge, S::lit(k as i64)),
                vec![NamedExpr::new(S::col(ColRef::new(0, 0)), "k0")],
            );
            ViewDef::new(format!("churn_{k}"), expr)
        })
        .collect();
    Some((templates, views))
}

/// The online-catalog measurement: [`CHURN_MATCHERS`] threads replay the
/// warm skewed stream against a primed engine while one registration
/// thread concurrently adds the disjoint-table views, paced a couple of
/// milliseconds apart so the publications land mid-stream. Throughput is
/// queries matched per wall-clock second across the whole churn window;
/// the hit rate is what the cache *retained* — with per-table
/// invalidation the disjoint registrations must not evict the warm
/// entries, so anything much below 1.0 is a regression.
fn measure_churn(
    w: &Workload,
    views: usize,
    templates: &[SpjgExpr],
    stream: &[SpjgExpr],
    churn: &[ViewDef],
) -> Record {
    let warm_cfg = MatchConfig {
        parallel_threshold: usize::MAX,
        ..MatchConfig::default()
    };
    let engine = engine_with(w, views, warm_cfg);
    for q in templates {
        std::hint::black_box(engine.find_substitutes(q));
    }
    engine.reset_stats();

    let done = AtomicBool::new(false);
    let matched = AtomicU64::new(0);
    let started = Instant::now();
    let mut lat = std::thread::scope(|scope| {
        scope.spawn(|| {
            for v in churn {
                engine.add_view(v.clone()).expect("churn views are valid");
                std::thread::sleep(Duration::from_millis(2));
            }
            done.store(true, Ordering::Release);
        });
        let matchers: Vec<_> = (0..CHURN_MATCHERS)
            .map(|_| {
                scope.spawn(|| {
                    let mut lat = Vec::new();
                    // Keep replaying until the writer finishes, then one
                    // final full pass over the settled catalog.
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        for q in stream {
                            let t = Instant::now();
                            std::hint::black_box(engine.find_substitutes(q));
                            lat.push(t.elapsed());
                        }
                        matched.fetch_add(stream.len() as u64, Ordering::Relaxed);
                        if finished {
                            break;
                        }
                    }
                    lat
                })
            })
            .collect();
        let mut all = Vec::new();
        for m in matchers {
            all.extend(m.join().expect("matcher thread panicked"));
        }
        all
    });
    let total = started.elapsed();
    let stats = engine.stats();
    Record {
        views,
        mode: "mixed",
        threads: CHURN_MATCHERS,
        queries: matched.load(Ordering::Relaxed) as usize,
        workload: "zipf-churn",
        p50_us: percentile_us(&mut lat, 0.50),
        p95_us: percentile_us(&mut lat, 0.95),
        p99_us: percentile_us(&mut lat, 0.99),
        throughput_qps: matched.load(Ordering::Relaxed) as f64 / total.as_secs_f64(),
        candidate_fraction: stats.candidate_fraction(),
        cache_hit_rate: Some(stats.cache_hit_rate()),
        rss_bytes_per_view: None,
        bytes_per_view_arena: Some(engine.arena_bytes() as f64 / views as f64),
    }
}

fn round(v: f64, digits: u32) -> f64 {
    let m = 10f64.powi(digits as i32);
    (v * m).round() / m
}

/// The uniform run-row schema every written row conforms to, new and
/// migrated alike. Field order is fixed so the file diffs cleanly.
const RUN_FIELDS: [&str; 19] = [
    "views",
    "mode",
    "workload",
    "threads",
    "queries",
    "p50_match_latency_us",
    "p95_match_latency_us",
    "p99_match_latency_us",
    "throughput_qps",
    "candidate_fraction",
    "cache_hit_rate",
    "rss_bytes_per_view",
    "bytes_per_view_arena",
    "prove_wall_ms",
    "proved",
    "refuted",
    "inconclusive",
    "maintain_us_per_delta",
    "fresh_serving_rate",
];

fn record_json(r: &Record) -> Json {
    Json::Obj(vec![
        ("views".into(), Json::Num(r.views as f64)),
        ("mode".into(), Json::Str(r.mode.into())),
        ("workload".into(), Json::Str(r.workload.into())),
        ("threads".into(), Json::Num(r.threads as f64)),
        ("queries".into(), Json::Num(r.queries as f64)),
        ("p50_match_latency_us".into(), Json::Num(round(r.p50_us, 2))),
        ("p95_match_latency_us".into(), Json::Num(round(r.p95_us, 2))),
        ("p99_match_latency_us".into(), Json::Num(round(r.p99_us, 2))),
        (
            "throughput_qps".into(),
            Json::Num(round(r.throughput_qps, 1)),
        ),
        (
            "candidate_fraction".into(),
            Json::Num(round(r.candidate_fraction, 5)),
        ),
        (
            "cache_hit_rate".into(),
            r.cache_hit_rate
                .map(|h| Json::Num(round(h, 4)))
                .unwrap_or(Json::Null),
        ),
        (
            "rss_bytes_per_view".into(),
            r.rss_bytes_per_view
                .map(|b| Json::Num(round(b, 1)))
                .unwrap_or(Json::Null),
        ),
        (
            "bytes_per_view_arena".into(),
            r.bytes_per_view_arena
                .map(|b| Json::Num(round(b, 1)))
                .unwrap_or(Json::Null),
        ),
        // Prove columns belong to the dedicated `mode: "prove"` row,
        // maintenance columns to the `mode: "maintain"` row.
        ("prove_wall_ms".into(), Json::Null),
        ("proved".into(), Json::Null),
        ("refuted".into(), Json::Null),
        ("inconclusive".into(), Json::Null),
        ("maintain_us_per_delta".into(), Json::Null),
        ("fresh_serving_rate".into(), Json::Null),
    ])
}

/// What one `--prove-smoke N` pass measured (structured, not prose: the
/// trajectory's `mode: "prove"` row and the strict wall-time ratchet
/// both read these fields).
struct ProveSmoke {
    views: usize,
    threads: usize,
    k: usize,
    proved: usize,
    refuted: usize,
    inconclusive: usize,
    wall_ms: u128,
}

/// The dedicated prove run row: matching-latency columns are `null`,
/// the four prove columns carry the measurements. `queries` records the
/// substitutes examined.
fn prove_run_json(s: &ProveSmoke) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::with_capacity(RUN_FIELDS.len());
    for &key in &RUN_FIELDS {
        let v = match key {
            "views" => Json::Num(s.views as f64),
            "mode" => Json::Str("prove".into()),
            "workload" => Json::Str("uniform".into()),
            "threads" => Json::Num(s.threads as f64),
            "queries" => Json::Num((s.proved + s.refuted + s.inconclusive) as f64),
            "prove_wall_ms" => Json::Num(s.wall_ms as f64),
            "proved" => Json::Num(s.proved as f64),
            "refuted" => Json::Num(s.refuted as f64),
            "inconclusive" => Json::Num(s.inconclusive as f64),
            _ => Json::Null,
        };
        fields.push((key.to_string(), v));
    }
    Json::Obj(fields)
}

/// Migrate one legacy run row to the uniform schema: known fields are
/// copied, absent measurements become `null`, absent `workload` becomes
/// `"uniform"` (the only workload older revisions ran).
fn migrate_run(run: &Json) -> Json {
    let fields = RUN_FIELDS
        .iter()
        .map(|&key| {
            let v = match run.get(key) {
                Some(v) => v.clone(),
                None if key == "workload" => Json::Str("uniform".into()),
                None => Json::Null,
            };
            (key.to_string(), v)
        })
        .collect();
    Json::Obj(fields)
}

/// Migrate one legacy trajectory entry: `unix_time` defaults to 0 (the
/// first revision never recorded it), the redundant per-entry
/// `benchmark`/`command` copies are dropped, `note` (engine tuning in
/// effect for the run) defaults to `null`, and every run row is
/// normalized.
fn migrate_entry(entry: &Json) -> Json {
    let num = |key: &str| {
        entry
            .get(key)
            .and_then(Json::as_f64)
            .map(Json::Num)
            .unwrap_or(Json::Num(0.0))
    };
    let runs = entry
        .get("runs")
        .and_then(Json::as_arr)
        .map(|rs| rs.iter().map(migrate_run).collect())
        .unwrap_or_default();
    Json::Obj(vec![
        ("unix_time".into(), num("unix_time")),
        ("queries".into(), num("queries")),
        ("threads".into(), num("threads")),
        (
            "note".into(),
            entry.get("note").cloned().unwrap_or(Json::Null),
        ),
        ("runs".into(), Json::Arr(runs)),
    ])
}

/// Parse and migrate whatever trajectory the existing file holds. A
/// `"trajectory"` document yields its entries; the pre-trajectory format
/// (one top-level object with a `"runs"` array) yields that object as a
/// single entry; anything unparseable yields nothing, with a warning —
/// the bench never loses a run to a corrupt file silently.
fn prior_entries(old: &str) -> Vec<Json> {
    let doc = match Json::parse(old) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("warning: existing trajectory file is not valid JSON ({e}); starting fresh");
            return Vec::new();
        }
    };
    if let Some(entries) = doc.get("trajectory").and_then(Json::as_arr) {
        entries.iter().map(migrate_entry).collect()
    } else if doc.get("runs").is_some() {
        vec![migrate_entry(&doc)]
    } else {
        eprintln!("warning: existing file holds no trajectory; starting fresh");
        Vec::new()
    }
}

/// Best (smallest positive) prior value of `field` across every prior
/// entry's uniform-serial row at this scale point — the baseline the
/// strict memory and latency gates ratchet against. `None` when no
/// prior entry ever recorded the field at this scale (first run at a
/// new scale passes trivially and becomes the baseline). Zero readings
/// are excluded: a 0 B/view RSS delta is allocator reuse, not a real
/// floor any future run could stay under.
fn best_prior(entries: &[Json], views: usize, field: &str) -> Option<f64> {
    best_prior_mode(entries, views, "serial", "uniform", field)
}

/// [`best_prior`] for an explicit run `mode` and `workload` — the prove
/// wall-time ratchet reads the `mode: "prove"` rows, the maintenance
/// ratchet the `mode: "maintain"` / `workload: "churn-writes"` rows.
fn best_prior_mode(
    entries: &[Json],
    views: usize,
    mode: &str,
    workload: &str,
    field: &str,
) -> Option<f64> {
    entries
        .iter()
        .filter_map(|e| e.get("runs").and_then(Json::as_arr))
        .flatten()
        .filter(|r| {
            r.get("views").and_then(Json::as_f64) == Some(views as f64)
                && r.get("mode").and_then(Json::as_str) == Some(mode)
                && r.get("workload").and_then(Json::as_str) == Some(workload)
        })
        .filter_map(|r| r.get(field).and_then(Json::as_f64))
        .filter(|&v| v > 0.0)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        })
}

/// The full trajectory document, oldest entry first.
fn trajectory_json(entries: Vec<Json>) -> Json {
    Json::Obj(vec![
        (
            "benchmark".into(),
            Json::Str("view-matching serial vs parallel".into()),
        ),
        (
            "command".into(),
            Json::Str("cargo run -p mv-bench --release --bin bench_matching".into()),
        ),
        ("trajectory".into(), Json::Arr(entries)),
    ])
}

fn entry_json(records: &[Record], args: &Args, workers: usize, extra_runs: Vec<Json>) -> Json {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let note = String::from(
        "parallel tuning: packed candidate scan min_chunk=64, auto mode falls back \
         to serial below 32 candidates/worker; batched rows drive \
         find_substitutes_many (one snapshot pin, fingerprint-grouped); prove \
         smoke runs the compiled-program prover (structured prove row)",
    );
    let mut runs: Vec<Json> = records.iter().map(record_json).collect();
    runs.extend(extra_runs);
    Json::Obj(vec![
        ("unix_time".into(), Json::Num(unix_time as f64)),
        ("queries".into(), Json::Num(args.queries as f64)),
        ("threads".into(), Json::Num(workers as f64)),
        ("note".into(), Json::Str(note)),
        ("runs".into(), Json::Arr(runs)),
    ])
}

/// Run the `mv-prove` bounded equivalence checker over the first `n`
/// substitutes the matcher produces at the `views` scale point. The
/// result lands in the trajectory as a dedicated `mode: "prove"` row
/// (the four structured prove columns); earlier revisions wrote a
/// free-text `note` line instead, which migration leaves as prose.
fn prove_smoke(w: &Workload, views: usize, n: usize) -> ProveSmoke {
    let engine = engine_with(
        w,
        views,
        MatchConfig {
            parallel_threshold: usize::MAX,
            substitute_cache_capacity: 0,
            prove_budget: 0,
            ..MatchConfig::default()
        },
    );
    let checks = engine.check_constraints();
    let ctx = mv_prove::ProveCtx::new(&w.catalog, &checks);
    // A smoke, not a gate: a modest per-proof budget keeps the wall time
    // proportionate (mv-lint --prove carries the exhaustive budget).
    let cfg = mv_prove::ProveConfig {
        max_databases: 500_000,
        ..mv_prove::ProveConfig::default()
    };
    let threads = mv_parallel::workers_for(usize::MAX);
    let views_guard = engine.views();
    let mut smoke = ProveSmoke {
        views,
        threads,
        k: cfg.k,
        proved: 0,
        refuted: 0,
        inconclusive: 0,
        wall_ms: 0,
    };
    let started = Instant::now();
    'outer: for query in &w.queries {
        for (id, sub) in engine.find_substitutes(query) {
            if smoke.proved + smoke.refuted + smoke.inconclusive == n {
                break 'outer;
            }
            let outcome = mv_prove::prove(&ctx, query, &views_guard.get(id).expr, &sub, &cfg);
            if outcome.is_proved() {
                smoke.proved += 1;
            } else if outcome.is_refuted() {
                smoke.refuted += 1;
            } else {
                smoke.inconclusive += 1;
            }
        }
    }
    smoke.wall_ms = started.elapsed().as_millis();
    smoke
}

/// Delta rounds the maintenance measurement drives.
const MAINTAIN_ROUNDS: usize = 32;

/// View-count cap for the maintenance row: registration materializes
/// every view over the tiny generated data, so the row measures a fixed
/// modest catalog rather than scaling with `--sizes`.
const MAINTAIN_VIEW_CAP: usize = 1000;

/// What the churn-with-writes maintenance measurement produced.
struct MaintainRun {
    views: usize,
    deltas: usize,
    serving_probes: usize,
    us_per_delta: f64,
    fresh_serving_rate: f64,
    incremental: usize,
    recompute: usize,
}

/// Register the first `views` workload views with the incremental-
/// maintenance driver over tiny generated base data, then stream
/// [`MAINTAIN_ROUNDS`] one-in/one-out delta rounds through the base
/// tables the views read. Per round: `apply_with_engine` is the timed
/// maintenance cost; the skewed query stream then replays against the
/// freshness-stamping engine (incremental views restamped by the round
/// are `Fresh`, recompute-fallback views are still stale) before the
/// dirty views refresh for the next round.
fn measure_maintain(w: &Workload, views: usize, stream: &[SpjgExpr]) -> MaintainRun {
    let engine = engine_with(
        w,
        views,
        MatchConfig {
            parallel_threshold: usize::MAX,
            ..MatchConfig::default()
        },
    );
    let (db, _) = generate_tpch(&TpchScale::tiny(), DATA_SEED);
    let mut maintainer = Maintainer::new(db);
    let guard = engine.views();
    let mut tables: Vec<TableId> = Vec::new();
    let (mut incremental, mut recompute) = (0usize, 0usize);
    for (id, def) in guard.iter() {
        match maintainer.register(id, def) {
            MaintainStrategy::Incremental => incremental += 1,
            MaintainStrategy::Recompute => recompute += 1,
        }
        tables.extend(def.expr.tables.iter().copied());
    }
    tables.sort_unstable();
    tables.dedup();
    let mut maintain_wall = Duration::ZERO;
    let mut deltas = 0usize;
    let (mut fresh, mut served) = (0u64, 0u64);
    let mut serving_probes = 0usize;
    for round in 0..MAINTAIN_ROUNDS {
        let Some(&table) = tables.get(round % tables.len().max(1)) else {
            break;
        };
        let rows = maintainer.db().rows(table);
        if rows.is_empty() {
            continue;
        }
        let delta = TableDelta {
            table,
            inserts: vec![rows[(round + 1) % rows.len()].clone()],
            deletes: vec![rows[round % rows.len()].clone()],
        };
        let t = Instant::now();
        maintainer.apply_with_engine(&delta, &engine);
        maintain_wall += t.elapsed();
        deltas += 1;
        for q in stream {
            serving_probes += 1;
            for (_, sub) in engine.find_substitutes(q) {
                served += 1;
                if sub.freshness.is_fresh() {
                    fresh += 1;
                }
            }
        }
        for (id, _) in guard.iter() {
            if maintainer.is_dirty(id) {
                maintainer.refresh_with_engine(id, &engine);
            }
        }
    }
    MaintainRun {
        views,
        deltas,
        serving_probes,
        us_per_delta: if deltas == 0 {
            0.0
        } else {
            maintain_wall.as_secs_f64() * 1e6 / deltas as f64
        },
        fresh_serving_rate: if served == 0 {
            1.0
        } else {
            fresh as f64 / served as f64
        },
        incremental,
        recompute,
    }
}

/// The dedicated maintenance run row: matching-latency and prove columns
/// are `null`, `queries` records the serving probes driven between
/// rounds, and the two maintenance columns carry the measurements.
fn maintain_run_json(m: &MaintainRun) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::with_capacity(RUN_FIELDS.len());
    for &key in &RUN_FIELDS {
        let v = match key {
            "views" => Json::Num(m.views as f64),
            "mode" => Json::Str("maintain".into()),
            "workload" => Json::Str("churn-writes".into()),
            "threads" => Json::Num(1.0),
            "queries" => Json::Num(m.serving_probes as f64),
            "maintain_us_per_delta" => Json::Num(round(m.us_per_delta, 2)),
            "fresh_serving_rate" => Json::Num(round(m.fresh_serving_rate, 4)),
            _ => Json::Null,
        };
        fields.push((key.to_string(), v));
    }
    Json::Obj(fields)
}

fn main() {
    let args = parse_args();
    let max_views = args.sizes.iter().copied().max().unwrap();
    let workers = if args.threads == 0 {
        mv_parallel::workers_for(usize::MAX)
    } else {
        args.threads
    };
    eprintln!(
        "building workload: {max_views} views, {} queries ...",
        args.queries
    );
    let w = build_workload(max_views, args.queries);

    let stream = zipf_stream(
        &w.queries[..ZIPF_TEMPLATES.min(w.queries.len())],
        args.queries,
    );
    let churn = churn_setup(&w);
    let churn_stream = churn
        .as_ref()
        .map(|(templates, _)| zipf_stream(templates, args.queries));

    // Prior entries serve double duty: the strict gates ratchet against
    // their best recorded values, and the new entry appends after them.
    let prior = std::fs::read_to_string(&args.out)
        .map(|old| prior_entries(&old))
        .unwrap_or_default();

    let mut records = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    println!(
        "| views | workload | mode | threads | p50 (us) | p95 (us) | p99 (us) | \
         throughput (q/s) | cand. frac | hit rate | arena B/view | speedup |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    let print_record = |r: &Record, speedup: Option<f64>| {
        println!(
            "| {} | {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.0} | {:.3}% | {} | {} | {} |",
            r.views,
            r.workload,
            r.mode,
            r.threads,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.throughput_qps,
            r.candidate_fraction * 100.0,
            r.cache_hit_rate
                .map(|h| format!("{:.1}%", h * 100.0))
                .unwrap_or_else(|| "-".to_string()),
            r.bytes_per_view_arena
                .map(|b| format!("{b:.0}"))
                .unwrap_or_else(|| "-".to_string()),
            speedup
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
        );
    };
    for &views in &args.sizes {
        let (serial, parallel) = measure(&w, &args, views, workers);
        let speedup = parallel.throughput_qps / serial.throughput_qps;
        // The regression assertion behind `--strict`: auto mode must fall
        // back to the serial path when fan-out cannot pay for itself, so
        // losing to serial by >10 % at any scale point is a bug, not a
        // tuning matter.
        if parallel.throughput_qps < 0.9 * serial.throughput_qps {
            failures.push(format!(
                "at {views} views the parallel auto mode ({:.0} q/s) regresses the serial \
                 path ({:.0} q/s) by more than 10%",
                parallel.throughput_qps, serial.throughput_qps
            ));
        }
        // Memory-per-view gates: the packed arena share is deterministic
        // (tight 1.25x tolerance); RSS is allocator- and noise-dependent
        // but is what actually bounds catalog scale, so it gets the same
        // tolerance against the *best* prior run.
        if let (Some(base), Some(now)) = (
            best_prior(&prior, views, "bytes_per_view_arena"),
            serial.bytes_per_view_arena,
        ) {
            if now > 1.25 * base {
                failures.push(format!(
                    "at {views} views the packed arena costs {now:.0} B/view, more than \
                     1.25x the best prior run ({base:.0} B/view)"
                ));
            }
        }
        // RSS only gates scale points with enough registrations for the
        // reading to rise above page granularity and allocator reuse: at
        // 100 views the whole delta is a few hundred KB, and the prior
        // trajectory shows it oscillating well past the tolerance on an
        // unchanged build.
        if let (Some(base), Some(now)) = (
            best_prior(&prior, views, "rss_bytes_per_view"),
            serial.rss_bytes_per_view.filter(|_| views >= 1000),
        ) {
            if now > 1.25 * base {
                failures.push(format!(
                    "at {views} views registration grows RSS by {now:.0} B/view, more than \
                     1.25x the best prior run ({base:.0} B/view)"
                ));
            }
        }
        // Latency gate: generous 2x tolerance against the best prior p50
        // — wide enough for scheduler noise, tight enough to catch the
        // kind of structural regression the packed layout exists to
        // prevent.
        if let Some(base) = best_prior(&prior, views, "p50_match_latency_us") {
            if serial.p50_us > 2.0 * base {
                failures.push(format!(
                    "at {views} views the serial p50 is {:.1} us, more than 2x the best \
                     prior run ({base:.1} us)",
                    serial.p50_us
                ));
            }
        }
        print_record(&serial, None);
        print_record(&parallel, Some(speedup));
        records.push(serial);
        records.push(parallel);

        let (cold, warm) = measure_zipf(&w, views, &stream);
        let cold_qps = cold.throughput_qps;
        let warm_speedup = warm.throughput_qps / cold_qps;
        print_record(&cold, None);
        print_record(&warm, Some(warm_speedup));
        records.push(cold);
        records.push(warm);

        let batched = measure_batched(&w, views, &stream, workers);
        print_record(&batched, Some(batched.throughput_qps / cold_qps));
        records.push(batched);

        if let (Some((templates, churn_views)), Some(churn_stream)) = (&churn, &churn_stream) {
            let under_churn = measure_churn(&w, views, templates, churn_stream, churn_views);
            let retained = under_churn.cache_hit_rate.unwrap_or(0.0);
            if retained < 0.9 {
                failures.push(format!(
                    "at {views} views the warm hit rate retained across a disjoint-table \
                     registration is {:.1}% (floor: 90%)",
                    retained * 100.0
                ));
            }
            print_record(&under_churn, None);
            records.push(under_churn);
        }
    }

    let mut extra_runs = Vec::new();
    if args.prove_smoke > 0 {
        let smoke = prove_smoke(&w, max_views, args.prove_smoke);
        eprintln!(
            "prove smoke at {} views: {} proved / {} refuted / {} inconclusive at k={} \
             in {} ms ({} threads)",
            smoke.views,
            smoke.proved,
            smoke.refuted,
            smoke.inconclusive,
            smoke.k,
            smoke.wall_ms,
            smoke.threads
        );
        // Prove wall-time ratchet: 1.5x the best prior prove row. Wall
        // clocks are noisier than the deterministic memory gates, but a
        // >1.5x slide means the prover lost an optimization, not jitter.
        if let Some(base) = best_prior_mode(&prior, max_views, "prove", "uniform", "prove_wall_ms")
        {
            if smoke.wall_ms as f64 > 1.5 * base {
                failures.push(format!(
                    "at {} views the prove smoke took {} ms, more than 1.5x the best \
                     prior run ({base:.0} ms)",
                    smoke.views, smoke.wall_ms
                ));
            }
        }
        extra_runs.push(prove_run_json(&smoke));
    }

    // The churn-with-writes maintenance row: one per run, at a capped
    // scale so registration stays proportionate.
    let m_views = max_views.min(MAINTAIN_VIEW_CAP);
    let maintain = measure_maintain(&w, m_views, &stream);
    eprintln!(
        "maintenance at {} views ({} incremental / {} recompute): {:.1} us/delta over {} \
         deltas, {:.1}% of substitutes served fresh",
        maintain.views,
        maintain.incremental,
        maintain.recompute,
        maintain.us_per_delta,
        maintain.deltas,
        maintain.fresh_serving_rate * 100.0
    );
    // Maintenance-cost ratchet: 2x the best prior maintain row at this
    // scale — per-delta costs are microseconds, so scheduler noise is
    // proportionally large; 2x still catches an algorithmic slide (e.g.
    // falling off the incremental path back to recompute).
    if let Some(base) = best_prior_mode(
        &prior,
        m_views,
        "maintain",
        "churn-writes",
        "maintain_us_per_delta",
    ) {
        if maintain.us_per_delta > 2.0 * base {
            failures.push(format!(
                "at {} views maintenance costs {:.1} us/delta, more than 2x the best \
                 prior run ({base:.1} us/delta)",
                maintain.views, maintain.us_per_delta
            ));
        }
    }
    extra_runs.push(maintain_run_json(&maintain));

    if failures.is_empty() {
        eprintln!("regression check: PASS (parallel auto mode and churn hit-rate retention)");
    } else {
        for f in &failures {
            eprintln!("regression check: FAIL — {f}");
        }
    }

    let mut entries = prior;
    let appended = !entries.is_empty();
    entries.push(entry_json(&records, &args, workers, extra_runs));
    let body = trajectory_json(entries).to_pretty();
    std::fs::write(&args.out, &body).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    eprintln!(
        "{} {}",
        if appended { "appended to" } else { "wrote" },
        args.out
    );
    if args.strict && !failures.is_empty() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Entry 1 of the real legacy file: no `unix_time`, redundant nested
    /// `benchmark`/`command`, rows without `workload`, `p99`, or
    /// `candidate_fraction`.
    const LEGACY: &str = r#"{
      "benchmark": "view-matching serial vs parallel",
      "command": "cargo run -p mv-bench --release --bin bench_matching",
      "trajectory": [
        {
          "benchmark": "view-matching serial vs parallel",
          "command": "cargo run -p mv-bench --release --bin bench_matching",
          "queries": 200,
          "threads": 4,
          "runs": [
            {"views": 100, "mode": "serial", "threads": 1, "queries": 200,
             "p50_match_latency_us": 21.07, "p95_match_latency_us": 43.05,
             "throughput_qps": 40343.2}
          ]
        },
        {
          "unix_time": 1754250000,
          "queries": 200,
          "threads": 4,
          "runs": [
            {"views": 100, "mode": "parallel", "workload": "zipf-warm", "threads": 4,
             "queries": 200, "p50_match_latency_us": 10.0, "p95_match_latency_us": 20.0,
             "p99_match_latency_us": 30.0, "throughput_qps": 90000.0,
             "candidate_fraction": 0.004, "cache_hit_rate": 0.98}
          ]
        }
      ]
    }"#;

    #[test]
    fn migration_produces_uniform_rows() {
        let entries = prior_entries(LEGACY);
        assert_eq!(entries.len(), 2);
        for entry in &entries {
            // Entry schema: exactly these four fields, in order.
            match entry {
                Json::Obj(fields) => {
                    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                    assert_eq!(keys, ["unix_time", "queries", "threads", "note", "runs"]);
                }
                other => panic!("entry is not an object: {other:?}"),
            }
            for run in entry.get("runs").unwrap().as_arr().unwrap() {
                match run {
                    Json::Obj(fields) => {
                        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                        assert_eq!(keys, RUN_FIELDS, "every row parses uniformly");
                    }
                    other => panic!("run is not an object: {other:?}"),
                }
            }
        }
        // The first entry's gaps got their documented defaults.
        assert_eq!(entries[0].get("unix_time").unwrap().as_u64(), Some(0));
        assert_eq!(entries[0].get("note"), Some(&Json::Null));
        let first_run = &entries[0].get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(first_run.get("rss_bytes_per_view"), Some(&Json::Null));
        assert_eq!(first_run.get("bytes_per_view_arena"), Some(&Json::Null));
        let first_run = &entries[0].get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(first_run.get("workload").unwrap().as_str(), Some("uniform"));
        assert_eq!(first_run.get("p99_match_latency_us"), Some(&Json::Null));
        assert_eq!(first_run.get("candidate_fraction"), Some(&Json::Null));
        assert_eq!(first_run.get("cache_hit_rate"), Some(&Json::Null));
        // Rows from before the structured prove columns null them.
        assert_eq!(first_run.get("prove_wall_ms"), Some(&Json::Null));
        assert_eq!(first_run.get("proved"), Some(&Json::Null));
        assert_eq!(first_run.get("refuted"), Some(&Json::Null));
        assert_eq!(first_run.get("inconclusive"), Some(&Json::Null));
        // Likewise rows from before the maintenance columns.
        assert_eq!(first_run.get("maintain_us_per_delta"), Some(&Json::Null));
        assert_eq!(first_run.get("fresh_serving_rate"), Some(&Json::Null));
        // Present measurements survive untouched.
        let second_run = &entries[1].get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            second_run.get("cache_hit_rate").unwrap().as_f64(),
            Some(0.98)
        );
        assert_eq!(
            entries[1].get("unix_time").unwrap().as_u64(),
            Some(1754250000)
        );
    }

    #[test]
    fn migrated_document_roundtrips() {
        let doc = trajectory_json(prior_entries(LEGACY));
        let reparsed = Json::parse(&doc.to_pretty()).expect("written file parses");
        assert_eq!(reparsed, doc);
        // A second migration pass is the identity: the schema is a fixed point.
        let again = prior_entries(&doc.to_pretty());
        assert_eq!(
            Json::Arr(again),
            reparsed.get("trajectory").unwrap().clone()
        );
    }

    #[test]
    fn gate_baseline_is_best_prior_uniform_serial_row() {
        let entries = prior_entries(
            r#"{"trajectory": [
                {"queries": 10, "threads": 1, "runs": [
                    {"views": 100, "mode": "serial", "workload": "uniform",
                     "p50_match_latency_us": 40.0, "rss_bytes_per_view": 900.0},
                    {"views": 100, "mode": "parallel", "workload": "uniform",
                     "p50_match_latency_us": 10.0}]},
                {"queries": 10, "threads": 1, "runs": [
                    {"views": 100, "mode": "serial", "workload": "uniform",
                     "p50_match_latency_us": 25.0},
                    {"views": 100, "mode": "serial", "workload": "zipf-cold",
                     "p50_match_latency_us": 5.0}]}
            ]}"#,
        );
        // Best across entries, uniform-serial rows only — the parallel
        // 10.0 and the zipf 5.0 must not become the baseline.
        assert_eq!(
            best_prior(&entries, 100, "p50_match_latency_us"),
            Some(25.0)
        );
        assert_eq!(best_prior(&entries, 100, "rss_bytes_per_view"), Some(900.0));
        // Unmeasured field / unseen scale: no baseline, gate passes.
        assert_eq!(best_prior(&entries, 100, "bytes_per_view_arena"), None);
        assert_eq!(best_prior(&entries, 1000, "p50_match_latency_us"), None);
    }

    #[test]
    fn prove_row_is_uniform_and_feeds_the_ratchet() {
        let smoke = ProveSmoke {
            views: 1000,
            threads: 4,
            k: 2,
            proved: 9,
            refuted: 0,
            inconclusive: 1,
            wall_ms: 450,
        };
        let row = prove_run_json(&smoke);
        match &row {
            Json::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, RUN_FIELDS, "the prove row is schema-uniform");
            }
            other => panic!("prove row is not an object: {other:?}"),
        }
        assert_eq!(row.get("mode").unwrap().as_str(), Some("prove"));
        assert_eq!(row.get("queries").unwrap().as_u64(), Some(10));
        assert_eq!(row.get("prove_wall_ms").unwrap().as_u64(), Some(450));
        assert_eq!(row.get("p50_match_latency_us"), Some(&Json::Null));
        // The ratchet baseline reads prove rows and ignores serial ones
        // (and vice versa: the latency gate must not see the prove row).
        let entry = Json::Obj(vec![("runs".into(), Json::Arr(vec![row]))]);
        let entries = vec![entry];
        assert_eq!(
            best_prior_mode(&entries, 1000, "prove", "uniform", "prove_wall_ms"),
            Some(450.0)
        );
        assert_eq!(best_prior(&entries, 1000, "prove_wall_ms"), None);
        assert_eq!(best_prior(&entries, 1000, "p50_match_latency_us"), None);
    }

    #[test]
    fn maintain_row_is_uniform_and_feeds_the_ratchet() {
        let run = MaintainRun {
            views: 1000,
            deltas: 32,
            serving_probes: 6400,
            us_per_delta: 12.5,
            fresh_serving_rate: 0.97,
            incremental: 700,
            recompute: 300,
        };
        let row = maintain_run_json(&run);
        match &row {
            Json::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, RUN_FIELDS, "the maintain row is schema-uniform");
            }
            other => panic!("maintain row is not an object: {other:?}"),
        }
        assert_eq!(row.get("mode").unwrap().as_str(), Some("maintain"));
        assert_eq!(row.get("workload").unwrap().as_str(), Some("churn-writes"));
        assert_eq!(
            row.get("maintain_us_per_delta").unwrap().as_f64(),
            Some(12.5)
        );
        assert_eq!(row.get("fresh_serving_rate").unwrap().as_f64(), Some(0.97));
        assert_eq!(row.get("p50_match_latency_us"), Some(&Json::Null));
        // The maintenance ratchet reads exactly these rows; the latency
        // and prove gates must not see them.
        let entry = Json::Obj(vec![("runs".into(), Json::Arr(vec![row]))]);
        let entries = vec![entry];
        assert_eq!(
            best_prior_mode(
                &entries,
                1000,
                "maintain",
                "churn-writes",
                "maintain_us_per_delta"
            ),
            Some(12.5)
        );
        assert_eq!(best_prior(&entries, 1000, "maintain_us_per_delta"), None);
        assert_eq!(best_prior(&entries, 1000, "p50_match_latency_us"), None);
    }

    #[test]
    fn pre_trajectory_file_is_absorbed() {
        let old = r#"{"queries": 100, "threads": 2, "runs": [
            {"views": 10, "mode": "serial", "threads": 1, "queries": 100,
             "p50_match_latency_us": 5.0, "p95_match_latency_us": 9.0,
             "throughput_qps": 1000.0}]}"#;
        let entries = prior_entries(old);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("queries").unwrap().as_u64(), Some(100));
        let run = &entries[0].get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get("workload").unwrap().as_str(), Some("uniform"));
    }
}
