//! A minimal JSON value, parser, and pretty-printer for the bench
//! trajectory files.
//!
//! The workspace deliberately vendors no serialization framework, but the
//! trajectory format needs more than string splicing: appending a run must
//! *migrate* legacy entries whose field sets drifted across earlier
//! revisions of the bench, which requires actually parsing them. This is a
//! strict-enough subset implementation: UTF-8 text, `\uXXXX` escapes
//! decoded, numbers as `f64` (every value the benches emit — counts,
//! microseconds, rates — is exactly representable), object key order
//! preserved so migrated files stay diffable.

/// A parsed JSON value. Object fields keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; the benches never need more than `f64` precision.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (surrounding whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing content at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if whole.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    /// Objects and arrays whose values are all scalars render on one line,
    /// so per-run records stay single-line and the file stays diffable.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Every value is a scalar — renders inline.
    fn is_flat(&self) -> bool {
        match self {
            Json::Arr(items) => items
                .iter()
                .all(|v| !matches!(v, Json::Arr(_) | Json::Obj(_))),
            Json::Obj(fields) => fields
                .iter()
                .all(|(_, v)| !matches!(v, Json::Arr(_) | Json::Obj(_))),
            _ => true,
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_num(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                } else if self.is_flat() {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write(out, depth);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        // One level down, a flat object still renders
                        // inline — that is the per-run record case.
                        v.write(out, depth + 1);
                        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                } else if self.is_flat() {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        write_escaped(out, k);
                        out.push_str(": ");
                        v.write(out, depth);
                    }
                    out.push('}');
                } else {
                    out.push_str("{\n");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        indent(out, depth + 1);
                        write_escaped(out, k);
                        out.push_str(": ");
                        v.write(out, depth + 1);
                        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                    }
                    indent(out, depth);
                    out.push('}');
                }
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Whole numbers print without a decimal point; everything else uses
/// Rust's shortest round-trip representation. Non-finite values (which the
/// benches never produce, but a division by a zero elapsed time could)
/// degrade to `null` rather than emit invalid JSON.
fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        "null".to_string()
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            // Surrogate pairs are not needed by anything the
                            // benches write; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.i
                            ))
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let text = r#"{
  "benchmark": "x",
  "trajectory": [
    {"unix_time": 1754000000, "runs": [{"views": 100, "p50": 33.25, "hit": null, "ok": true}]},
    {"unix_time": 0, "runs": []}
  ]
}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("x"));
        let traj = v.get("trajectory").unwrap().as_arr().unwrap();
        assert_eq!(traj.len(), 2);
        let run = &traj[0].get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get("views").unwrap().as_u64(), Some(100));
        assert_eq!(run.get("p50").unwrap().as_f64(), Some(33.25));
        assert_eq!(run.get("hit"), Some(&Json::Null));
        // Reparse of the pretty form is identical.
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn numbers_and_escapes() {
        let v = Json::parse(r#"{"a": -1.5e3, "b": "q\"\\\nA"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("q\"\\\nA"));
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn flat_records_render_single_line() {
        let v = Json::Obj(vec![
            ("views".into(), Json::Num(100.0)),
            ("mode".into(), Json::Str("serial".into())),
        ]);
        assert_eq!(v.to_pretty(), "{\"views\": 100, \"mode\": \"serial\"}\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
