//! Shared benchmark infrastructure: workload setup and the measurement
//! loops behind the `figures` binary and the Criterion micro-benches.

pub mod json;

use mv_core::{MatchConfig, MatchingEngine};
use mv_data::{generate_tpch, TpchScale};
use mv_optimizer::{Optimizer, OptimizerConfig};
use mv_plan::{SpjgExpr, ViewDef};
use mv_workload::{Generator, WorkloadParams};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seeds used throughout so every figure is reproducible.
pub const VIEW_SEED: u64 = 0x5EED_0001;
/// Seed for query generation ("with a different seed", section 5).
pub const QUERY_SEED: u64 = 0x5EED_0002;
/// Seed for the statistics population.
pub const DATA_SEED: u64 = 0x5EED_0003;

/// A prepared workload: catalog with statistics, views, queries.
pub struct Workload {
    /// Catalog with collected statistics.
    pub catalog: mv_catalog::Catalog,
    /// Generated views (the experiments slice prefixes of this).
    pub views: Vec<ViewDef>,
    /// Generated queries.
    pub queries: Vec<SpjgExpr>,
}

/// Build the section 5 workload: TPC-H statistics, `n_views` random views,
/// `n_queries` random queries.
pub fn build_workload(n_views: usize, n_queries: usize) -> Workload {
    let (db, _) = generate_tpch(&TpchScale::small(), DATA_SEED);
    let catalog = db.catalog;
    let views = Generator::new(&catalog, WorkloadParams::views(), VIEW_SEED).views(n_views);
    let queries =
        Generator::new(&catalog, WorkloadParams::queries(), QUERY_SEED).queries(n_queries);
    Workload {
        catalog,
        views,
        queries,
    }
}

/// Build a matching engine over the first `n` views of the workload.
/// Registers them as one bulk batch: one snapshot build and one
/// publication, so even 100k-view engines construct in O(n).
pub fn engine_with(workload: &Workload, n: usize, config: MatchConfig) -> MatchingEngine {
    let engine = MatchingEngine::new(workload.catalog.clone(), config);
    engine
        .add_views(workload.views.iter().take(n).cloned().collect())
        .expect("generated views are valid");
    engine
}

/// One measured optimization pass over all queries.
#[derive(Debug, Clone)]
pub struct PassResult {
    /// Wall-clock time for optimizing every query.
    pub total_time: Duration,
    /// Time spent inside the view-matching rule (filtering + checking +
    /// substitute construction), from the engine's instrumentation.
    pub matching_time: Duration,
    /// Matching-rule invocations.
    pub invocations: u64,
    /// Candidate views examined after filtering.
    pub candidates: u64,
    /// Views registered × invocations (candidate-fraction denominator).
    pub views_available: u64,
    /// Substitutes produced by the rule.
    pub substitutes: u64,
    /// Queries whose final plan scans at least one materialized view.
    pub plans_using_views: usize,
}

/// Optimize every query once and collect the measurements.
pub fn run_pass(
    workload: &Workload,
    engine: &MatchingEngine,
    opt_config: &OptimizerConfig,
) -> PassResult {
    engine.reset_stats();
    let optimizer = Optimizer::new(engine, opt_config.clone());
    let mut plans_using_views = 0usize;
    let started = Instant::now();
    for q in &workload.queries {
        let optimized = optimizer.optimize(q);
        if optimized.plan.uses_view() {
            plans_using_views += 1;
        }
    }
    let total_time = started.elapsed();
    let stats = engine.stats();
    PassResult {
        total_time,
        matching_time: stats.match_time,
        invocations: stats.invocations,
        candidates: stats.candidates,
        views_available: stats.views_available,
        substitutes: stats.substitutes,
        plans_using_views,
    }
}

/// [`run_pass`] with the optimization loop fanned out over `workers`
/// threads, all sharing one engine through an `Arc`. Each worker builds
/// its own (cheap) [`Optimizer`] over the shared engine and the queries
/// are distributed by work stealing; results are identical to the serial
/// pass, and the engine's instrumentation accumulates across workers.
pub fn run_pass_parallel(
    workload: &Workload,
    engine: &Arc<MatchingEngine>,
    opt_config: &OptimizerConfig,
    workers: usize,
) -> PassResult {
    engine.reset_stats();
    let started = Instant::now();
    let uses: Vec<bool> = mv_parallel::par_map(&workload.queries, workers.max(1), |q| {
        let optimizer = Optimizer::new(Arc::clone(engine), opt_config.clone());
        optimizer.optimize(q).plan.uses_view()
    });
    let total_time = started.elapsed();
    let plans_using_views = uses.iter().filter(|&&u| u).count();
    let stats = engine.stats();
    PassResult {
        total_time,
        matching_time: stats.match_time,
        invocations: stats.invocations,
        candidates: stats.candidates,
        views_available: stats.views_available,
        substitutes: stats.substitutes,
        plans_using_views,
    }
}

/// The four optimizer configurations of Figure 2.
pub fn figure2_configs() -> Vec<(&'static str, MatchConfig, OptimizerConfig)> {
    let filter_on = MatchConfig::default();
    let filter_off = MatchConfig {
        use_filter_tree: false,
        ..MatchConfig::default()
    };
    let alt = OptimizerConfig::default();
    let no_alt = OptimizerConfig {
        produce_substitutes: false,
        ..OptimizerConfig::default()
    };
    vec![
        ("Alt & Filter", filter_on.clone(), alt.clone()),
        ("NoAlt & Filter", filter_on, no_alt.clone()),
        ("Alt & NoFilter", filter_off.clone(), alt),
        ("NoAlt & NoFilter", filter_off, no_alt),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_and_pass_smoke() {
        let w = build_workload(30, 10);
        assert_eq!(w.views.len(), 30);
        assert_eq!(w.queries.len(), 10);
        let engine = engine_with(&w, 30, MatchConfig::default());
        let pass = run_pass(&w, &engine, &OptimizerConfig::default());
        assert!(pass.invocations >= 10, "rule fired per query at least once");
        assert!(pass.total_time >= pass.matching_time || pass.matching_time.as_micros() == 0);
    }

    #[test]
    fn parallel_pass_matches_serial() {
        let w = build_workload(30, 10);
        let engine = Arc::new(engine_with(&w, 30, MatchConfig::default()));
        let cfg = OptimizerConfig::default();
        let serial = run_pass(&w, &engine, &cfg);
        let parallel = run_pass_parallel(&w, &engine, &cfg, 4);
        assert_eq!(parallel.invocations, serial.invocations);
        assert_eq!(parallel.candidates, serial.candidates);
        assert_eq!(parallel.substitutes, serial.substitutes);
        assert_eq!(parallel.plans_using_views, serial.plans_using_views);
    }

    #[test]
    fn figure2_has_four_series() {
        let configs = figure2_configs();
        assert_eq!(configs.len(), 4);
        assert!(!configs[2].1.use_filter_tree);
        assert!(!configs[1].2.produce_substitutes);
    }
}
