//! Finite value-domain construction for the enumerative pass.
//!
//! The small-scope hypothesis only bites if the finite domain can
//! actually exhibit a difference between query and substitute. The domain
//! is therefore derived from the predicates themselves: every constant
//! appearing in a comparison over a column family contributes itself and
//! its immediate neighbours (`c-1`, `c`, `c+1` for discrete types), so
//! strict-vs-inclusive bound mutations and off-by-one range widenings
//! land on enumerable values. Column *families* — columns connected by
//! foreign keys, join equalities, or check-constraint equalities — share
//! one pooled domain so equijoins can both hit and miss.
//!
//! Columns no predicate or output references collapse to a single value
//! (NULL when nullable): they cannot influence either plan's result, so
//! enumerating them would only multiply the database count.

use mv_catalog::{Catalog, ColumnId, ColumnType, TableId, Value};
use mv_data::{topo_order, ColumnDomain, EnumSpec, TableSpec};
use mv_expr::{classify, BoolExpr, ColRef, Conjunct, EquivClasses, ScalarExpr};
use mv_plan::{OutputList, SpjgExpr, Substitute};
use std::collections::{HashMap, HashSet};

/// Cap on pooled values per column family; beyond it the domain is
/// truncated and the prove outcome degrades to `MV303` (bound not fully
/// explored) instead of a certificate.
pub const MAX_FAMILY_VALUES: usize = 12;

/// A constructed enumeration spec plus whether any family was truncated.
pub(crate) struct DomainSpec {
    pub spec: EnumSpec,
    pub truncated: bool,
}

/// Encode a base-table column as a `ColRef` so `EquivClasses` (which is
/// occurrence-keyed) can union-find over base columns: `occ` carries the
/// table id.
fn base(t: TableId, c: ColumnId) -> ColRef {
    ColRef {
        occ: mv_expr::OccId(t.0),
        col: c,
    }
}

/// Map a substitute-column-space position to the base-table column it
/// reads, when it transparently reads one (plain-column view output /
/// grouping expression, or a backjoin column).
pub(crate) fn sub_pos_to_base(
    catalog: &Catalog,
    view: &SpjgExpr,
    sub: &Substitute,
    pos: usize,
) -> Option<(TableId, ColumnId)> {
    let arity = view.output_arity();
    if pos < arity {
        let expr = match &view.output {
            OutputList::Spj(items) => &items[pos].expr,
            OutputList::Aggregate { group_by, .. } => &group_by.get(pos)?.expr,
        };
        let c = expr.as_column()?;
        Some((view.table_of(c.occ), c.col))
    } else {
        let mut start = arity;
        for bj in &sub.backjoins {
            let n = catalog.table(bj.table).columns.len();
            if pos < start + n {
                return Some((bj.table, ColumnId((pos - start) as u32)));
            }
            start += n;
        }
        None
    }
}

/// Collect `(column, constant)` pairs from comparisons anywhere in a
/// boolean tree (both orientations; LIKE patterns contribute their
/// literal text so string domains can hit the pattern).
fn constant_pairs(b: &BoolExpr, out: &mut Vec<(ColRef, Value)>) {
    match b {
        BoolExpr::And(ps) | BoolExpr::Or(ps) => ps.iter().for_each(|p| constant_pairs(p, out)),
        BoolExpr::Not(p) => constant_pairs(p, out),
        BoolExpr::Compare { left, right, .. } => {
            if let (Some(c), true) = (left.as_column(), right.is_constant()) {
                out.push((c, right.eval(&|_| Value::Null)));
            }
            if let (Some(c), true) = (right.as_column(), left.is_constant()) {
                out.push((c, left.eval(&|_| Value::Null)));
            }
        }
        BoolExpr::Like { expr, pattern, .. } => {
            if let Some(c) = expr.as_column() {
                out.push((c, Value::from(pattern.replace(['%', '_'], ""))));
            }
        }
        BoolExpr::IsNull { .. } | BoolExpr::Literal(_) => {}
    }
}

/// Per-conjunct constant collection (ranges carry theirs directly).
fn conjunct_constants(c: &Conjunct, out: &mut Vec<(ColRef, Value)>) {
    match c {
        Conjunct::Range { col, value, .. } => out.push((*col, value.clone())),
        Conjunct::Residual(b) => constant_pairs(b, out),
        Conjunct::ColumnEq(..) => {}
    }
}

/// A constant plus its immediate neighbours, so mutated bounds separate.
fn neighbourhood(v: &Value) -> Vec<Value> {
    match v {
        Value::Int(i) => vec![
            Value::Int(i.saturating_sub(1)),
            Value::Int(*i),
            Value::Int(i.saturating_add(1)),
        ],
        Value::Date(d) => vec![
            Value::Date(d.saturating_sub(1)),
            Value::Date(*d),
            Value::Date(d.saturating_add(1)),
        ],
        Value::Float(f) => vec![
            Value::Float(f - 1.0),
            Value::Float(*f),
            Value::Float(f + 1.0),
        ],
        Value::Str(s) => vec![Value::Str(s.clone())],
        Value::Null => vec![],
    }
}

/// Fit a pooled constant to a column's type. SQL comparisons coerce
/// integer literals against FLOAT/DATE columns (the TPC-H predicates
/// write `l_quantity > 10` with `l_quantity` a FLOAT), so the domain
/// must too, or the constants a predicate actually tests against would
/// silently drop out of the enumeration.
fn coerce(v: &Value, ty: ColumnType) -> Option<Value> {
    match (v, ty) {
        (Value::Int(i), ColumnType::Int) => Some(Value::Int(*i)),
        (Value::Int(i), ColumnType::Float) => Some(Value::Float(*i as f64)),
        (Value::Int(i), ColumnType::Date) => i32::try_from(*i).ok().map(Value::Date),
        (Value::Float(f), ColumnType::Float) => Some(Value::Float(*f)),
        (Value::Str(s), ColumnType::Str) => Some(Value::Str(s.clone())),
        (Value::Date(d), ColumnType::Date) => Some(Value::Date(*d)),
        _ => None,
    }
}

/// Two default values per type: joins and disequalities need room to
/// both hit and miss even when no predicate names a constant.
fn default_values(ty: ColumnType) -> Vec<Value> {
    match ty {
        ColumnType::Int => vec![Value::Int(0), Value::Int(1)],
        ColumnType::Float => vec![Value::Float(0.0), Value::Float(1.0)],
        ColumnType::Str => vec![Value::Str("a".into()), Value::Str("b".into())],
        ColumnType::Date => vec![Value::Date(0), Value::Date(1)],
    }
}

/// Build the bounded-enumeration spec for a (query, view, substitute)
/// triple: tables in FK topological order, per-column domains pooled by
/// column family. `Err` when the pair is outside the supported fragment
/// (FK cycle among the referenced tables).
pub(crate) fn build_spec(
    catalog: &Catalog,
    checks: &HashMap<TableId, Vec<Conjunct>>,
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
    k: usize,
) -> Result<DomainSpec, String> {
    let mut tables: Vec<TableId> = query.tables.iter().chain(&view.tables).copied().collect();
    tables.extend(sub.backjoins.iter().map(|b| b.table));
    tables.sort();
    tables.dedup();
    let order = topo_order(catalog, &tables)
        .ok_or_else(|| "foreign-key cycle among referenced tables".to_string())?;
    let in_set = |t: TableId| tables.binary_search(&t).is_ok();

    // Union-find over base columns: FK edges, join equalities of either
    // expression, substitute equalities, and check-constraint equalities
    // all pool their endpoints into one family.
    let mut ec = EquivClasses::new();
    let mut referenced: HashSet<ColRef> = HashSet::new();
    let mut constants: Vec<(ColRef, Value)> = Vec::new();

    for (_, fk) in catalog.foreign_keys() {
        if in_set(fk.from_table) && in_set(fk.to_table) {
            for (f, t) in fk.from_columns.iter().zip(&fk.to_columns) {
                ec.union(base(fk.from_table, *f), base(fk.to_table, *t));
            }
        }
    }

    let record = |expr_tables: &[TableId],
                  conjuncts: &[Conjunct],
                  ec: &mut EquivClasses,
                  referenced: &mut HashSet<ColRef>,
                  constants: &mut Vec<(ColRef, Value)>| {
        let to_base = |c: ColRef| base(expr_tables[c.occ.0 as usize], c.col);
        for conj in conjuncts {
            for c in conj.columns() {
                referenced.insert(to_base(c));
            }
            if let Conjunct::ColumnEq(a, b) = conj {
                ec.union(to_base(*a), to_base(*b));
            }
            let mut pairs = Vec::new();
            conjunct_constants(conj, &mut pairs);
            constants.extend(pairs.into_iter().map(|(c, v)| (to_base(c), v)));
        }
    };
    record(
        &query.tables,
        &query.conjuncts,
        &mut ec,
        &mut referenced,
        &mut constants,
    );
    record(
        &view.tables,
        &view.conjuncts,
        &mut ec,
        &mut referenced,
        &mut constants,
    );
    for (&t, cs) in checks {
        if in_set(t) {
            record(&[t], cs, &mut ec, &mut referenced, &mut constants);
        }
    }

    // Substitute predicates live in the substitute's column space; only
    // transparently-mapped positions pin down base columns.
    let to_base_sub = |c: ColRef| {
        sub_pos_to_base(catalog, view, sub, c.col.0 as usize).map(|(t, col)| base(t, col))
    };
    for pred in &sub.predicates {
        for conj in classify(pred.clone()) {
            for c in conj.columns() {
                if let Some(b) = to_base_sub(c) {
                    referenced.insert(b);
                }
            }
            if let Conjunct::ColumnEq(a, b) = &conj {
                if let (Some(a), Some(b)) = (to_base_sub(*a), to_base_sub(*b)) {
                    ec.union(a, b);
                }
            }
            let mut pairs = Vec::new();
            conjunct_constants(&conj, &mut pairs);
            for (c, v) in pairs {
                if let Some(b) = to_base_sub(c) {
                    constants.push((b, v));
                }
            }
        }
    }

    // Output columns matter too: a projection difference only shows up
    // if the projected columns take more than one value.
    for c in query.referenced_columns() {
        referenced.insert(base(query.tables[c.occ.0 as usize], c.col));
    }
    for c in view.referenced_columns() {
        referenced.insert(base(view.tables[c.occ.0 as usize], c.col));
    }
    let sub_output_cols: Vec<ColRef> = match &sub.output {
        OutputList::Spj(items) => items.iter().flat_map(|n| n.expr.columns()).collect(),
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => group_by
            .iter()
            .flat_map(|n| n.expr.columns())
            .chain(aggregates.iter().flat_map(|a| {
                a.func
                    .argument()
                    .map(ScalarExpr::columns)
                    .unwrap_or_default()
            }))
            .collect(),
    };
    for c in sub_output_cols {
        if let Some(b) = to_base_sub(c) {
            referenced.insert(b);
        }
    }
    for bj in &sub.backjoins {
        for (pos, col) in &bj.key {
            referenced.insert(base(bj.table, *col));
            if let Some(b) = sub_pos_to_base(catalog, view, sub, *pos).map(|(t, c)| base(t, c)) {
                referenced.insert(b);
            }
        }
    }

    // Pool constants and referenced-ness by family root.
    let mut family_values: HashMap<ColRef, Vec<Value>> = HashMap::new();
    for (c, v) in &constants {
        family_values
            .entry(ec.find(*c))
            .or_default()
            .extend(neighbourhood(v));
    }
    let family_referenced: HashSet<ColRef> = referenced.iter().map(|c| ec.find(*c)).collect();

    let mut truncated = false;
    let mut specs = Vec::with_capacity(order.len());
    for &t in &order {
        let table = catalog.table(t);
        let mut columns = Vec::with_capacity(table.columns.len());
        for (ci, col) in table.columns.iter().enumerate() {
            let root = ec.find(base(t, ColumnId(ci as u32)));
            let dom = if family_referenced.contains(&root) {
                let mut vals: Vec<Value> = family_values
                    .get(&root)
                    .map(|vs| vs.iter().filter_map(|v| coerce(v, col.ty)).collect())
                    .unwrap_or_default();
                if col.ty == ColumnType::Str && !vals.is_empty() {
                    // One value no pattern/constant names, so string
                    // predicates can also miss.
                    vals.push(Value::Str("\u{10FFFF}".into()));
                }
                if vals.is_empty() {
                    vals = default_values(col.ty);
                }
                vals.sort_by(Value::total_cmp);
                vals.dedup();
                if vals.len() > MAX_FAMILY_VALUES {
                    vals.truncate(MAX_FAMILY_VALUES);
                    truncated = true;
                }
                ColumnDomain {
                    values: vals,
                    with_null: !col.not_null,
                }
            } else if col.not_null {
                ColumnDomain::of(vec![ColumnDomain::default_value(col.ty)])
            } else {
                // Unreferenced nullable column: NULL alone is always
                // constraint-legal (FKs and checks pass on NULL).
                ColumnDomain {
                    values: vec![],
                    with_null: true,
                }
            };
            columns.push(dom);
        }
        specs.push(TableSpec { table: t, columns });
    }
    Ok(DomainSpec {
        spec: EnumSpec {
            tables: specs,
            max_rows: k,
        },
        truncated,
    })
}
