//! `mv-prove` — a bounded semantic equivalence prover for view-matching
//! rewrites (DESIGN.md §15).
//!
//! mv-verify re-derives the paper's §3 *syntactic* soundness conditions;
//! mv-audit proves filter-tree completeness. Neither proves the actual
//! semantics: that a substitute plan computes the same row bag as the
//! original query on **every** database. This crate closes that gap with
//! a small-scope bounded model checker in the Cosette/Alloy style:
//!
//! 1. a **symbolic pass** ([`symbolic`]) abstracts both plans into the
//!    shared `EquivClasses`/`Interval` domains and either discharges the
//!    pair outright or reports `MV301 symbolic-mismatch` naming the
//!    column/predicate where the abstractions separate;
//! 2. an **enumerative pass** exhaustively generates every database up to
//!    bound `k` rows per table over a constraint-respecting finite domain
//!    (predicate constants ±1 plus NULL, foreign-key columns restricted
//!    to referenced keys — Chirkova-style *relative* equivalence),
//!    executes both plans through `mv-exec`, and compares row bags,
//!    reporting `MV302 counterexample` with the witness database rendered
//!    in full and a replayable seed.
//!
//! **Bound-soundness caveat**: a pair the enumerative pass exhausts is
//! certified equivalent only *up to k* over the derived domain — the
//! bound (row count *and* value domain) is part of the claim. Refutations
//! (`MV301`/`MV302`) carry no such caveat: a witness is a witness.

mod domain;
mod enumerative;
mod memo;
mod symbolic;

pub use domain::MAX_FAMILY_VALUES;
pub use memo::ProveMemo;

use mv_catalog::{Catalog, TableId};
use mv_data::{Database, EnumOutcome, Enumerator, Row};
use mv_exec::{bag_diff, execute_spjg, execute_substitute_with};
use mv_expr::Conjunct;
use mv_plan::{SpjgExpr, Substitute};
use mv_verify::{Diagnostic, RuleId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Shared prover context: the catalog plus the declared check
/// constraints (per table, column references with `occ = 0`).
pub struct ProveCtx<'a> {
    /// Schema and integrity constraints.
    pub catalog: &'a Catalog,
    /// Declared check constraints per table.
    pub checks: &'a HashMap<TableId, Vec<Conjunct>>,
}

impl<'a> ProveCtx<'a> {
    /// Bundle a catalog and its check constraints.
    pub fn new(catalog: &'a Catalog, checks: &'a HashMap<TableId, Vec<Conjunct>>) -> Self {
        ProveCtx { catalog, checks }
    }
}

/// Prover knobs.
#[derive(Debug, Clone)]
pub struct ProveConfig {
    /// Maximum rows per table in enumerated databases (the bound `k`).
    pub k: usize,
    /// Maximum databases the enumerative pass may visit.
    pub max_databases: u64,
    /// Try the symbolic pass first (disable to force an enumerated
    /// witness for a pair the abstraction would already separate).
    pub symbolic: bool,
    /// Worker threads for the enumerative pass: `0` = auto (machine
    /// parallelism), `1` = serial. Parallelism never changes the verdict,
    /// the counterexample index, or the budget accounting — only wall
    /// time.
    pub jobs: usize,
}

impl Default for ProveConfig {
    fn default() -> Self {
        ProveConfig {
            k: 2,
            max_databases: 20_000,
            symbolic: true,
            jobs: 0,
        }
    }
}

/// A concrete refutation: a constraint-satisfying database on which the
/// two plans disagree.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Enumeration index of the database — the replayable seed:
    /// [`replay`] with the same pair, bound and seed reconstructs it.
    pub seed: u64,
    /// The witness database itself.
    pub database: Database,
    /// Rows the original query returns on it.
    pub query_rows: Vec<Row>,
    /// Rows the substitute returns on it.
    pub substitute_rows: Vec<Row>,
    /// Human-readable bag difference (from `mv_exec::bag_diff`).
    pub diff: String,
}

impl Witness {
    /// Render the witness for a diagnostic: every table's contents, both
    /// result bags, the bag difference, and the replay seed.
    pub fn render(&self, tables: &[TableId]) -> String {
        let mut out = String::new();
        for &t in tables {
            let table = self.database.catalog.table(t);
            let cols: Vec<&str> = table.columns.iter().map(|c| c.name.as_str()).collect();
            let _ = write!(out, "{}({})=[", table.name, cols.join(","));
            for (i, row) in self.database.rows(t).iter().enumerate() {
                let _ = write!(out, "{}{}", if i > 0 { " " } else { "" }, render_row(row));
            }
            out.push_str("] ");
        }
        let _ = write!(
            out,
            "query={} substitute={} | {} | seed={}",
            render_rows(&self.query_rows),
            render_rows(&self.substitute_rows),
            self.diff,
            self.seed
        );
        out
    }
}

fn render_row(row: &Row) -> String {
    let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
    format!("({})", vals.join(","))
}

fn render_rows(rows: &[Row]) -> String {
    let items: Vec<String> = rows.iter().map(render_row).collect();
    format!("[{}]", items.join(" "))
}

/// What the prover concluded about one (query, substitute) pair.
#[derive(Debug, Clone)]
pub enum ProveOutcome {
    /// The symbolic abstractions are equal on an exact fragment:
    /// equivalent on **all** databases.
    ProvedSymbolic,
    /// Every database up to the bound agreed (count attached).
    /// Equivalence is certified *up to k* only.
    ProvedBounded {
        /// Databases checked (the whole bounded space).
        databases: u64,
    },
    /// The symbolic pass separates the pair (MV301).
    SymbolicMismatch {
        /// The offending column or predicate.
        detail: String,
    },
    /// The enumerative pass found a disagreeing database (MV302).
    Counterexample(Box<Witness>),
    /// Budget ran out (or a value domain was truncated) before the
    /// bounded space was exhausted; no disagreement seen (MV303).
    BudgetExhausted {
        /// Databases checked before stopping.
        databases: u64,
    },
    /// The pair is outside the supported fragment; nothing checked
    /// (MV304).
    Unsupported {
        /// Why.
        reason: String,
    },
}

impl ProveOutcome {
    /// Did the prover establish a definite non-equivalence?
    pub fn is_refuted(&self) -> bool {
        matches!(
            self,
            ProveOutcome::SymbolicMismatch { .. } | ProveOutcome::Counterexample(_)
        )
    }

    /// Did the prover certify the pair (symbolically, or up to the
    /// bound)?
    pub fn is_proved(&self) -> bool {
        matches!(
            self,
            ProveOutcome::ProvedSymbolic | ProveOutcome::ProvedBounded { .. }
        )
    }
}

/// Prove (or refute) that `sub`, evaluated over the view defined by
/// `view_expr`, is equivalent to `query` relative to the catalog's
/// integrity constraints.
pub fn prove(
    ctx: &ProveCtx<'_>,
    query: &SpjgExpr,
    view_expr: &SpjgExpr,
    sub: &Substitute,
    cfg: &ProveConfig,
) -> ProveOutcome {
    let mut sym_note = "";
    if cfg.symbolic {
        match symbolic::symbolic_pass(ctx.catalog, ctx.checks, query, view_expr, sub) {
            symbolic::Symbolic::Discharged => return ProveOutcome::ProvedSymbolic,
            symbolic::Symbolic::Separated(detail) => {
                return ProveOutcome::SymbolicMismatch { detail }
            }
            symbolic::Symbolic::Inconclusive(reason) => sym_note = reason,
        }
    }
    let dom = match domain::build_spec(ctx.catalog, ctx.checks, query, view_expr, sub, cfg.k) {
        Ok(d) => d,
        Err(reason) => {
            let reason = if sym_note.is_empty() {
                reason
            } else {
                format!("{reason} (symbolic pass: {sym_note})")
            };
            return ProveOutcome::Unsupported { reason };
        }
    };
    let res = enumerative::run(ctx, query, view_expr, sub, &dom.spec, cfg);
    if let Some(w) = res.witness {
        return ProveOutcome::Counterexample(Box::new(w));
    }
    match res.outcome {
        EnumOutcome::Exhausted if !dom.truncated => ProveOutcome::ProvedBounded {
            databases: res.databases,
        },
        EnumOutcome::Exhausted | EnumOutcome::BudgetExhausted => ProveOutcome::BudgetExhausted {
            databases: res.databases,
        },
        EnumOutcome::DomainTooLarge => ProveOutcome::Unsupported {
            reason: format!(
                "a table's row domain exceeds the enumerator cap ({})",
                mv_data::MAX_ROW_DOMAIN
            ),
        },
        EnumOutcome::Stopped => unreachable!("a stopped walk carries a witness"),
    }
}

/// [`prove`] with a workload-scoped cache of proved canonical pairs. On a
/// cache hit the stored outcome is returned without re-running either
/// pass; misses prove normally and record proved outcomes. The memo must
/// not outlive the `ctx` it was first used with (the catalog is not part
/// of the cache key — see [`ProveMemo`]).
pub fn prove_with_memo(
    ctx: &ProveCtx<'_>,
    query: &SpjgExpr,
    view_expr: &SpjgExpr,
    sub: &Substitute,
    cfg: &ProveConfig,
    memo: &mut ProveMemo,
) -> ProveOutcome {
    let key = memo::canonical_key(query, view_expr, sub, cfg);
    if let Some(hit) = memo.get(&key) {
        return hit;
    }
    let outcome = prove(ctx, query, view_expr, sub, cfg);
    memo.record(key, &outcome);
    outcome
}

/// Reconstruct the database behind an `MV302` seed and re-execute both
/// plans on it. `None` when the seed is outside the bounded space (wrong
/// pair, bound, or budget).
pub fn replay(
    ctx: &ProveCtx<'_>,
    query: &SpjgExpr,
    view_expr: &SpjgExpr,
    sub: &Substitute,
    cfg: &ProveConfig,
    seed: u64,
) -> Option<Witness> {
    let dom = domain::build_spec(ctx.catalog, ctx.checks, query, view_expr, sub, cfg.k).ok()?;
    let enumerator = Enumerator::new(ctx.catalog, ctx.checks, &dom.spec);
    let db = enumerator.database_at(seed)?;
    let query_rows = execute_spjg(&db, query);
    let view_rows = execute_spjg(&db, view_expr);
    let substitute_rows = execute_substitute_with(&db, &view_rows, sub);
    let diff = bag_diff(&substitute_rows, &query_rows).unwrap_or_default();
    Some(Witness {
        seed,
        database: db,
        query_rows,
        substitute_rows,
        diff,
    })
}

/// The tables a pair touches, in the enumerator's (FK-topological) order
/// — the order [`Witness::render`] lists them in.
pub fn pair_tables(query: &SpjgExpr, view_expr: &SpjgExpr, sub: &Substitute) -> Vec<TableId> {
    let mut tables: Vec<TableId> = query
        .tables
        .iter()
        .chain(&view_expr.tables)
        .copied()
        .collect();
    tables.extend(sub.backjoins.iter().map(|b| b.table));
    tables.sort();
    tables.dedup();
    tables
}

/// Render a prove outcome as `mv-verify` diagnostics (MV301–MV304;
/// proved outcomes produce none).
pub fn prove_diagnostics(
    outcome: &ProveOutcome,
    view_name: &str,
    query_name: &str,
    tables: &[TableId],
    cfg: &ProveConfig,
) -> Vec<Diagnostic> {
    match outcome {
        ProveOutcome::ProvedSymbolic | ProveOutcome::ProvedBounded { .. } => vec![],
        ProveOutcome::SymbolicMismatch { detail } => vec![Diagnostic::error(
            RuleId::SymbolicMismatch,
            "symbolic abstraction separates query and substitute",
        )
        .with_view(view_name)
        .with_query(query_name)
        .with_detail(detail)],
        ProveOutcome::Counterexample(w) => vec![Diagnostic::error(
            RuleId::Counterexample,
            format!(
                "counterexample database at bound k={}: substitute and query disagree",
                cfg.k
            ),
        )
        .with_view(view_name)
        .with_query(query_name)
        .with_detail(w.render(tables))],
        ProveOutcome::BudgetExhausted { databases } => vec![Diagnostic::warning(
            RuleId::ProveBudgetExhausted,
            format!(
                "bound k={} not exhausted after {} databases; no counterexample found",
                cfg.k, databases
            ),
        )
        .with_view(view_name)
        .with_query(query_name)],
        ProveOutcome::Unsupported { reason } => vec![Diagnostic::warning(
            RuleId::ProveUnsupported,
            "pair is outside the prover's supported fragment",
        )
        .with_view(view_name)
        .with_query(query_name)
        .with_detail(reason)],
    }
}
