//! The symbolic pass: abstract interpretation over the shared
//! `EquivClasses` / `Interval` domains.
//!
//! Both plans are abstracted to a triple of (equivalence-class partition,
//! per-class interval, residual-template set) over the *view's*
//! occurrence space. If the triples are equal the pair is discharged
//! without enumerating a single database; if they definitely differ the
//! pass reports the separation (`MV301`) naming the offending column or
//! predicate; anything the abstraction cannot decide falls through to the
//! enumerative pass.
//!
//! Check constraints participate on **both** sides, but only when every
//! column they mention is declared `NOT NULL`: SQL's `CHECK` passes on
//! UNKNOWN, so a constraint over a nullable column does *not* hold on
//! every row — folding it would wrongly discharge substitutes that differ
//! exactly on NULL rows (the blind spot the corruption suite pins).

use mv_catalog::{Catalog, TableId};
use mv_expr::{classify, ColRef, Conjunct, EquivClasses, Interval, ScalarExpr, Template};
use mv_plan::{OutputList, SpjgExpr, Substitute};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Outcome of the symbolic pass.
pub(crate) enum Symbolic {
    /// Abstract states equal on a fragment where abstraction is exact:
    /// the pair is equivalent on all databases.
    Discharged,
    /// Abstract states definitely differ; the string names the column or
    /// predicate that separates them.
    Separated(String),
    /// The abstraction cannot decide; enumerate.
    Inconclusive(&'static str),
}

/// Run the symbolic pass on a (query, view, substitute) triple.
pub(crate) fn symbolic_pass(
    catalog: &Catalog,
    checks: &HashMap<TableId, Vec<Conjunct>>,
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
) -> Symbolic {
    if query.is_aggregate() || view.is_aggregate() {
        return Symbolic::Inconclusive("aggregation");
    }
    if !sub.backjoins.is_empty() {
        return Symbolic::Inconclusive("backjoins");
    }
    if matches!(sub.output, OutputList::Aggregate { .. }) {
        return Symbolic::Inconclusive("regrouping");
    }
    // The abstraction compares predicates occurrence-by-occurrence, so it
    // needs a *unique* occurrence bijection: identical table multisets
    // with no repeated table (a self-join admits several bijections).
    let mut q_sorted = query.tables.clone();
    let mut v_sorted = view.tables.clone();
    q_sorted.sort();
    v_sorted.sort();
    if q_sorted != v_sorted {
        return Symbolic::Inconclusive("table-mapping");
    }
    if q_sorted.windows(2).any(|w| w[0] == w[1]) {
        return Symbolic::Inconclusive("self-join");
    }
    let bij: Vec<u32> = query
        .tables
        .iter()
        .map(|t| view.tables.iter().position(|v| v == t).unwrap() as u32)
        .collect();
    let map_q = |c: ColRef| ColRef::new(bij[c.occ.0 as usize], c.col.0);

    // Substitute column space -> view occurrence space: only plain-column
    // view outputs are transparent to the abstraction.
    let mut expand_sub_col = |c: ColRef| -> Option<ColRef> {
        view.scalar_outputs()
            .get(c.col.0 as usize)?
            .expr
            .as_column()
    };

    let q_conj: Vec<Conjunct> = query
        .conjuncts
        .iter()
        .map(|c| c.try_map_columns(&mut |r| Some(map_q(r))).unwrap())
        .collect();
    let mut s_extra: Vec<Conjunct> = Vec::new();
    for pred in &sub.predicates {
        for conj in classify(pred.clone()) {
            match conj.try_map_columns(&mut expand_sub_col) {
                Some(mapped) => s_extra.push(mapped),
                None => return Symbolic::Inconclusive("opaque-output"),
            }
        }
    }
    // Check constraints over all-NOT-NULL columns, remapped to each view
    // occurrence of their table.
    let mut nn_checks: Vec<Conjunct> = Vec::new();
    for (occ, t) in view.occurrences() {
        let Some(cs) = checks.get(&t) else { continue };
        let table = catalog.table(t);
        for c in cs {
            if c.columns()
                .iter()
                .all(|r| table.columns[r.col.0 as usize].not_null)
            {
                nn_checks.push(
                    c.try_map_columns(&mut |r| Some(ColRef { occ, col: r.col }))
                        .unwrap(),
                );
            }
        }
    }

    // (a) Equivalence-class partitions over every referenced column.
    let build_ec = |lists: &[&[Conjunct]]| {
        let mut ec = EquivClasses::new();
        for list in lists {
            for c in *list {
                if let Conjunct::ColumnEq(a, b) = c {
                    ec.union(*a, *b);
                }
            }
        }
        ec
    };
    let ec_q = build_ec(&[&q_conj, &nn_checks]);
    let ec_s = build_ec(&[&view.conjuncts, &s_extra, &nn_checks]);
    let mut cols: BTreeSet<ColRef> = BTreeSet::new();
    for list in [&q_conj, &view.conjuncts, &s_extra, &nn_checks] {
        for c in list {
            cols.extend(c.columns());
        }
    }
    let cols: Vec<ColRef> = cols.into_iter().collect();
    for (i, &a) in cols.iter().enumerate() {
        for &b in &cols[i + 1..] {
            if ec_q.same(a, b) != ec_s.same(a, b) {
                return Symbolic::Separated(format!(
                    "equality {a} = {b} holds on {} side only",
                    if ec_q.same(a, b) {
                        "the query"
                    } else {
                        "the substitute"
                    }
                ));
            }
        }
    }
    let ec = ec_q; // partitions agree; use one for normalization

    // (b) Folded per-class intervals.
    let fold = |lists: &[&[Conjunct]]| -> Result<BTreeMap<ColRef, Interval>, ColRef> {
        let mut out: BTreeMap<ColRef, Interval> = BTreeMap::new();
        for list in lists {
            for c in *list {
                if let Conjunct::Range { col, op, value } = c {
                    let root = ec.find(*col);
                    let iv = out.entry(root).or_insert_with(Interval::unconstrained);
                    if !iv.apply(*op, value) {
                        return Err(root);
                    }
                }
            }
        }
        Ok(out)
    };
    let q_ranges = match fold(&[&q_conj, &nn_checks]) {
        Ok(r) => r,
        Err(_) => return Symbolic::Inconclusive("unfoldable-range"),
    };
    let s_ranges = match fold(&[&view.conjuncts, &s_extra, &nn_checks]) {
        Ok(r) => r,
        Err(_) => return Symbolic::Inconclusive("unfoldable-range"),
    };
    let roots: BTreeSet<ColRef> = q_ranges.keys().chain(s_ranges.keys()).copied().collect();
    for root in roots {
        let unconstrained = Interval::unconstrained;
        let qi = q_ranges.get(&root).cloned().unwrap_or_else(unconstrained);
        let si = s_ranges.get(&root).cloned().unwrap_or_else(unconstrained);
        if qi != si {
            return Symbolic::Separated(format!(
                "range on {root}: query requires {qi}, substitute enforces {si}"
            ));
        }
    }

    // (c) Residual-predicate sets, normalized to class roots via the
    // matcher's own template canonicalization.
    let residual_key = |c: &Conjunct| -> (String, Vec<ColRef>) {
        let b = c.to_bool().map_columns(&mut |r| ec.find(r));
        let t = Template::of_bool(&b);
        (t.text, t.cols)
    };
    let residual_set = |lists: &[&[Conjunct]]| -> BTreeSet<(String, Vec<ColRef>)> {
        lists
            .iter()
            .flat_map(|l| l.iter())
            .filter(|c| matches!(c, Conjunct::Residual(_)))
            .map(residual_key)
            .collect()
    };
    let q_res = residual_set(&[&q_conj, &nn_checks]);
    let s_res = residual_set(&[&view.conjuncts, &s_extra, &nn_checks]);
    if q_res != s_res {
        let only_q: Vec<_> = q_res.difference(&s_res).collect();
        let only_s: Vec<_> = s_res.difference(&q_res).collect();
        // One-sided difference = a predicate dropped or invented
        // outright; a two-sided difference may just be two renderings of
        // equivalent predicates, which only enumeration can tell apart.
        return match (only_q.first(), only_s.first()) {
            (Some(r), None) => Symbolic::Separated(format!(
                "query residual {:?} is neither enforced by the view nor compensated",
                r.0
            )),
            (None, Some(r)) => Symbolic::Separated(format!(
                "substitute enforces residual {:?} the query never asked for",
                r.0
            )),
            _ => Symbolic::Inconclusive("residual-mismatch"),
        };
    }

    // (d) Outputs: expand substitute outputs through the view's output
    // expressions and compare position by position up to class roots. A
    // mismatch here is *not* a separation — two different expressions can
    // agree on every constrained database — so it only blocks discharge.
    let OutputList::Spj(sub_items) = &sub.output else {
        return Symbolic::Inconclusive("regrouping");
    };
    let q_items = query.scalar_outputs();
    if q_items.len() != sub_items.len() {
        return Symbolic::Inconclusive("output-arity");
    }
    for (qi, si) in q_items.iter().zip(sub_items) {
        let Some(expanded) = expand_scalar(&si.expr, view) else {
            return Symbolic::Inconclusive("opaque-output");
        };
        let qn = qi.expr.map_columns(&mut |c| ec.find(map_q(c)));
        let sn = expanded.map_columns(&mut |c| ec.find(c));
        let (qt, st) = (Template::of_scalar(&qn), Template::of_scalar(&sn));
        if qt.text != st.text || qt.cols != st.cols {
            return Symbolic::Inconclusive("output-mapping");
        }
    }
    Symbolic::Discharged
}

/// Replace substitute-space column references (`occ 0`, position `i`)
/// with the view's `i`-th output expression.
fn expand_scalar(e: &ScalarExpr, view: &SpjgExpr) -> Option<ScalarExpr> {
    match e {
        ScalarExpr::Column(c) => Some(view.scalar_outputs().get(c.col.0 as usize)?.expr.clone()),
        ScalarExpr::Literal(v) => Some(ScalarExpr::Literal(v.clone())),
        ScalarExpr::Binary { op, left, right } => Some(ScalarExpr::Binary {
            op: *op,
            left: Box::new(expand_scalar(left, view)?),
            right: Box::new(expand_scalar(right, view)?),
        }),
    }
}
