//! The enumerative pass: compiled plan programs over a chunked,
//! cancellable walk of the bounded database space (DESIGN.md §16).
//!
//! Plans are compiled once per (query, substitute) pair into
//! [`PlanProgram`]/[`SubstituteProgram`] and evaluated over per-worker
//! reusable scratch buffers — the tree-walking interpreter is reserved for
//! [`crate::replay`] and the differential tests. The deterministic
//! enumeration index space `[0, total)` is split into one contiguous chunk
//! per worker via [`Enumerator::for_each_range`], so a counterexample found
//! in parallel reports exactly the global index a serial walk would have
//! reported first:
//!
//! * workers stop as soon as their next index is at or past the best
//!   (smallest) refutation index published so far — but any *smaller*
//!   index keeps being visited, so the minimum survives cancellation;
//! * the visited-database count is charged deterministically: the space
//!   is counted up to the budget once, chunks partition exactly that
//!   range, and the per-chunk quotas sum back to the same total a serial
//!   walk reports (MV303 parity).

use crate::{ProveConfig, ProveCtx, Witness};
use mv_data::{Database, EnumOutcome, EnumSpec, Enumerator};
use mv_exec::{bag_diff, rowbag_eq, ExecScratch, PlanProgram, RowBag, SubstitutePipeline};
use mv_parallel::sync::atomic::{AtomicU64, Ordering};
use mv_parallel::sync::{lock_or_recover, Mutex};
use mv_plan::{SpjgExpr, Substitute};

/// Below this many databases a fan-out costs more than it saves (each
/// chunk re-walks its prefix of the enumeration tree).
const PAR_MIN_DATABASES: u64 = 1024;

/// Outcome of the enumerative pass, before mapping to a
/// [`crate::ProveOutcome`].
pub(crate) struct EnumResult {
    /// The minimum-index refutation, if any.
    pub witness: Option<Witness>,
    /// Databases charged against the budget — identical for serial and
    /// parallel walks of the same pair.
    pub databases: u64,
    /// How the walk ended (`Stopped` never escapes: a stop is a witness).
    pub outcome: EnumOutcome,
}

/// The compiled pair: the query plan plus the (view, substitute) pipeline,
/// which fuses away view materialization for column-projection views.
struct Programs {
    query: PlanProgram,
    pipeline: SubstitutePipeline,
    /// The query compiled against the view's occurrence numbering, present
    /// when both sides join the same tuple stream (the common case: the
    /// view is the query's own SPJ block, possibly with occurrences
    /// numbered differently) — one join pass then feeds both outputs.
    shared_query: Option<PlanProgram>,
}

impl Programs {
    fn new(
        catalog: &mv_catalog::Catalog,
        query_expr: &SpjgExpr,
        view_expr: &SpjgExpr,
        sub: &Substitute,
    ) -> Self {
        let query = PlanProgram::compile(catalog, query_expr);
        let pipeline = SubstitutePipeline::compile(catalog, view_expr, sub);
        let shared_query = pipeline.shared_query(catalog, &query, query_expr, view_expr);
        Programs {
            query,
            pipeline,
            shared_query,
        }
    }
}

/// Per-worker reusable buffers.
#[derive(Default)]
struct Bags {
    scratch: ExecScratch,
    query: RowBag,
    view: RowBag,
    sub: RowBag,
}

/// Execute the compiled pair on one database; true iff the bags agree.
fn agree(progs: &Programs, db: &Database, b: &mut Bags) -> bool {
    if let Some(q) = &progs.shared_query {
        progs
            .pipeline
            .execute_shared(q, db, &mut b.scratch, &mut b.query, &mut b.sub);
    } else {
        progs.query.execute(db, &mut b.scratch, &mut b.query);
        progs
            .pipeline
            .execute(db, &mut b.scratch, &mut b.view, &mut b.sub);
    }
    rowbag_eq(&b.sub, &b.query, &mut b.scratch.matched)
}

/// Build the MV302 witness for a disagreeing database (cold path — the
/// only allocating step of the loop).
fn make_witness(seed: u64, db: &Database, b: &Bags) -> Witness {
    let query_rows = b.query.to_rows();
    let substitute_rows = b.sub.to_rows();
    let diff = bag_diff(&substitute_rows, &query_rows).unwrap_or_default();
    Witness {
        seed,
        database: db.clone(),
        query_rows,
        substitute_rows,
        diff,
    }
}

/// Run the enumerative pass for one pair over the derived spec.
pub(crate) fn run(
    ctx: &ProveCtx<'_>,
    query: &SpjgExpr,
    view_expr: &SpjgExpr,
    sub: &Substitute,
    spec: &EnumSpec,
    cfg: &ProveConfig,
) -> EnumResult {
    let progs = Programs::new(ctx.catalog, query, view_expr, sub);
    let enumerator = Enumerator::new(ctx.catalog, ctx.checks, spec);
    let jobs = if cfg.jobs == 0 {
        mv_parallel::workers_for(usize::MAX)
    } else {
        cfg.jobs
    };
    if jobs <= 1 || cfg!(mv_model) || mv_parallel::in_worker() {
        return serial_pass(&progs, &enumerator, cfg.max_databases);
    }
    // Count the chargeable index space first (a walk without plan
    // execution). This is what makes budget accounting deterministic:
    // chunks partition exactly [0, total).
    let stats = enumerator.for_each(cfg.max_databases, |_, _| true);
    if stats.outcome == EnumOutcome::DomainTooLarge {
        return EnumResult {
            witness: None,
            databases: stats.databases,
            outcome: EnumOutcome::DomainTooLarge,
        };
    }
    let total = stats.databases;
    if total < PAR_MIN_DATABASES {
        return serial_pass(&progs, &enumerator, cfg.max_databases);
    }
    parallel_pass(
        &progs,
        &enumerator,
        total,
        stats.outcome == EnumOutcome::Exhausted,
        jobs,
    )
}

fn serial_pass(progs: &Programs, enumerator: &Enumerator<'_>, budget: u64) -> EnumResult {
    let mut bags = Bags::default();
    let mut witness = None;
    let stats = enumerator.for_each(budget, |seed, db| {
        if agree(progs, db, &mut bags) {
            true
        } else {
            witness = Some(make_witness(seed, db, &bags));
            false
        }
    });
    EnumResult {
        witness,
        databases: stats.databases,
        outcome: stats.outcome,
    }
}

/// Fan the index range `[0, total)` across `jobs` contiguous chunks with
/// early-exit cancellation on the smallest refutation index.
fn parallel_pass(
    progs: &Programs,
    enumerator: &Enumerator<'_>,
    total: u64,
    exhausted: bool,
    jobs: usize,
) -> EnumResult {
    // One chunk per worker: more chunks would re-walk more enumeration
    // prefix (a chunk must traverse [0, hi) to reach [lo, hi)).
    let n = (jobs as u64).min(total).max(1);
    let chunks: Vec<(u64, u64)> = (0..n)
        .map(|c| (c * total / n, (c + 1) * total / n))
        .collect();
    // The smallest refutation index published so far; u64::MAX = none.
    // Workers keep visiting indices below it, so the global minimum is
    // always reached even after cancellation kicks in.
    let best = AtomicU64::new(u64::MAX);
    let found: Mutex<Option<Witness>> = Mutex::new(None);
    mv_parallel::par_map(&chunks, jobs, |&(lo, hi)| {
        let mut bags = Bags::default();
        enumerator.for_each_range(lo, hi, |seed, db| {
            if seed >= best.load(Ordering::SeqCst) {
                return false; // a smaller refutation already exists
            }
            if agree(progs, db, &mut bags) {
                return true;
            }
            let w = make_witness(seed, db, &bags);
            let mut slot = lock_or_recover(&found);
            if slot.as_ref().is_none_or(|old| w.seed < old.seed) {
                best.store(w.seed, Ordering::SeqCst);
                *slot = Some(w);
            }
            false // later indices in this chunk are all larger
        });
    });
    let witness = lock_or_recover(&found).take();
    EnumResult {
        witness,
        databases: total,
        outcome: if exhausted {
            EnumOutcome::Exhausted
        } else {
            EnumOutcome::BudgetExhausted
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::{Catalog, TableId};
    use mv_expr::{BoolExpr, CmpOp, ColRef, Conjunct, ScalarExpr as S};
    use mv_plan::{NamedExpr, OutputList, SpjgExpr, ViewId};
    use std::collections::HashMap;

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    /// One-table schema plus an equivalent and a subtly-off substitute.
    fn fixture(catalog: &mut Catalog) -> (TableId, SpjgExpr, SpjgExpr, Substitute, Substitute) {
        use mv_catalog::schema::TableBuilder;
        use mv_catalog::ColumnType;
        let t = catalog.add_table(
            TableBuilder::new("t")
                .col("pk", ColumnType::Int)
                .nullable_col("x", ColumnType::Int)
                .primary_key(&["pk"])
                .build(),
        );
        let query = SpjgExpr::spj(
            vec![t],
            BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Le, S::lit(10i64)),
            vec![NamedExpr::new(S::col(cr(0, 0)), "pk")],
        );
        let view = SpjgExpr::spj(
            vec![t],
            BoolExpr::Literal(true),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "pk"),
                NamedExpr::new(S::col(cr(0, 1)), "x"),
            ],
        );
        let good = Substitute {
            view: ViewId(0),
            backjoins: vec![],
            predicates: vec![BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Le, S::lit(10i64))],
            output: OutputList::Spj(vec![NamedExpr::new(S::col(cr(0, 0)), "pk")]),
            freshness: mv_plan::Freshness::Fresh,
        };
        let bad = Substitute {
            predicates: vec![BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Lt, S::lit(10i64))],
            ..good.clone()
        };
        (t, query, view, good, bad)
    }

    fn spec_for(
        ctx: &ProveCtx<'_>,
        query: &SpjgExpr,
        view: &SpjgExpr,
        sub: &Substitute,
        k: usize,
    ) -> EnumSpec {
        crate::domain::build_spec(ctx.catalog, ctx.checks, query, view, sub, k)
            .expect("supported fragment")
            .spec
    }

    #[test]
    fn parallel_pass_matches_serial_verdict_and_seed() {
        let mut catalog = Catalog::new();
        let (_t, query, view, good, bad) = fixture(&mut catalog);
        let checks: HashMap<TableId, Vec<Conjunct>> = HashMap::new();
        let ctx = ProveCtx::new(&catalog, &checks);
        let cfg = ProveConfig {
            k: 2,
            ..Default::default()
        };
        for sub in [&good, &bad] {
            let spec = spec_for(&ctx, &query, &view, sub, cfg.k);
            let progs = Programs::new(ctx.catalog, &query, &view, sub);
            let en = Enumerator::new(ctx.catalog, ctx.checks, &spec);
            let serial = serial_pass(&progs, &en, cfg.max_databases);
            let (total, exhausted) = en.count(cfg.max_databases);
            // Force the chunked path regardless of the size threshold.
            let par = parallel_pass(&progs, &en, total, exhausted, 3);
            match (&serial.witness, &par.witness) {
                (None, None) => {
                    assert_eq!(serial.databases, par.databases, "MV303 parity");
                    assert_eq!(serial.outcome, par.outcome);
                }
                (Some(s), Some(p)) => {
                    assert_eq!(s.seed, p.seed, "same global counterexample index");
                    assert_eq!(s.query_rows, p.query_rows);
                    assert_eq!(s.substitute_rows, p.substitute_rows);
                }
                other => panic!("verdicts diverge: {other:?}"),
            }
        }
    }

    #[test]
    fn budget_accounting_is_deterministic_under_parallelism() {
        let mut catalog = Catalog::new();
        let (_t, query, view, good, _bad) = fixture(&mut catalog);
        let checks: HashMap<TableId, Vec<Conjunct>> = HashMap::new();
        let ctx = ProveCtx::new(&catalog, &checks);
        let cfg = ProveConfig {
            k: 2,
            ..Default::default()
        };
        let spec = spec_for(&ctx, &query, &view, &good, cfg.k);
        let progs = Programs::new(ctx.catalog, &query, &view, &good);
        let en = Enumerator::new(ctx.catalog, ctx.checks, &spec);
        let (space, _) = en.count(u64::MAX);
        assert!(space > 8, "fixture space large enough to truncate");
        let budget = space / 2;
        let serial = serial_pass(&progs, &en, budget);
        assert_eq!(serial.outcome, EnumOutcome::BudgetExhausted);
        assert_eq!(serial.databases, budget);
        let (total, exhausted) = en.count(budget);
        assert!(!exhausted);
        for jobs in [2usize, 3, 5] {
            let par = parallel_pass(&progs, &en, total, exhausted, jobs);
            assert_eq!(par.databases, serial.databases, "jobs={jobs}");
            assert_eq!(par.outcome, EnumOutcome::BudgetExhausted);
            assert!(par.witness.is_none());
        }
    }
}
