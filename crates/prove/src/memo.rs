//! Memoization of proved plan pairs across a workload (DESIGN.md §16).
//!
//! The §5 workload proves many substitutes whose (query, view, substitute)
//! triples repeat up to output naming — different queries rewritten over
//! structurally identical views produce identical prove problems. A
//! [`ProveMemo`] caches *proved* outcomes keyed on a canonical rendering of
//! the triple with all output names blanked, plus the bound parameters.
//!
//! **Soundness**: the key captures every input the prover reads from the
//! pair — tables, conjuncts, output expressions, backjoins, compensating
//! predicates, the bound `k`, the database budget, and whether the
//! symbolic pass runs. Output names are the only thing erased, and no
//! pass consults them. The catalog and check constraints are *not* part
//! of the key, so a memo must live within one [`crate::ProveCtx`] — reuse
//! it per workload run, never across schemas. Only proved outcomes are
//! cached: refutations carry pair-specific witnesses and are rare enough
//! to recompute.

use crate::{ProveConfig, ProveOutcome};
use mv_plan::{Freshness, NamedAgg, NamedExpr, OutputList, SpjgExpr, Substitute, ViewId};
use std::collections::HashMap;

/// A cache of proved canonical pairs for one workload run.
#[derive(Debug, Default)]
pub struct ProveMemo {
    map: HashMap<String, ProveOutcome>,
    hits: u64,
}

impl ProveMemo {
    /// An empty memo.
    pub fn new() -> Self {
        ProveMemo::default()
    }

    /// Cached outcomes stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// How many lookups returned a cached outcome.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn get(&mut self, key: &str) -> Option<ProveOutcome> {
        let hit = self.map.get(key).cloned();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    pub(crate) fn record(&mut self, key: String, outcome: &ProveOutcome) {
        if outcome.is_proved() {
            self.map.insert(key, outcome.clone());
        }
    }
}

fn strip_output(output: &OutputList) -> OutputList {
    match output {
        OutputList::Spj(items) => OutputList::Spj(
            items
                .iter()
                .map(|ne| NamedExpr::new(ne.expr.clone(), ""))
                .collect(),
        ),
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => OutputList::Aggregate {
            group_by: group_by
                .iter()
                .map(|ne| NamedExpr::new(ne.expr.clone(), ""))
                .collect(),
            aggregates: aggregates
                .iter()
                .map(|na| NamedAgg::new(na.func.clone(), ""))
                .collect(),
        },
    }
}

fn strip_expr(e: &SpjgExpr) -> SpjgExpr {
    SpjgExpr {
        tables: e.tables.clone(),
        conjuncts: e.conjuncts.clone(),
        output: strip_output(&e.output),
    }
}

fn strip_sub(s: &Substitute) -> Substitute {
    Substitute {
        // The view id is bookkeeping, not semantics: the prover reads the
        // view through `view_expr`.
        view: ViewId(0),
        backjoins: s.backjoins.clone(),
        predicates: s.predicates.clone(),
        output: strip_output(&s.output),
        // Freshness is a serving guarantee, not semantics: a stale and a
        // fresh stamp of the same rewrite prove identically.
        freshness: Freshness::Fresh,
    }
}

/// The canonical cache key for one prove problem.
pub(crate) fn canonical_key(
    query: &SpjgExpr,
    view_expr: &SpjgExpr,
    sub: &Substitute,
    cfg: &ProveConfig,
) -> String {
    format!(
        "k={};b={};sym={};q={:?};v={:?};s={:?}",
        cfg.k,
        cfg.max_databases,
        cfg.symbolic,
        strip_expr(query),
        strip_expr(view_expr),
        strip_sub(sub),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ignores_output_names_only() {
        use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
        let q1 = SpjgExpr::spj(
            vec![mv_catalog::TableId(0)],
            BoolExpr::cmp(S::col(ColRef::new(0, 1)), CmpOp::Le, S::lit(10i64)),
            vec![NamedExpr::new(S::col(ColRef::new(0, 0)), "a")],
        );
        let mut q2 = q1.clone();
        if let OutputList::Spj(items) = &mut q2.output {
            items[0].name = "renamed".into();
        }
        let sub = Substitute {
            view: ViewId(3),
            backjoins: vec![],
            predicates: vec![],
            output: OutputList::Spj(vec![NamedExpr::new(S::col(ColRef::new(0, 0)), "x")]),
            freshness: Freshness::Fresh,
        };
        let mut sub2 = sub.clone();
        sub2.view = ViewId(9);
        let cfg = ProveConfig::default();
        assert_eq!(
            canonical_key(&q1, &q1, &sub, &cfg),
            canonical_key(&q2, &q2, &sub2, &cfg),
            "names and view ids are erased"
        );
        let mut q3 = q1.clone();
        q3.conjuncts.clear();
        assert_ne!(
            canonical_key(&q1, &q1, &sub, &cfg),
            canonical_key(&q3, &q3, &sub, &cfg),
            "semantic changes alter the key"
        );
        // Bound parameters are part of the claim.
        let deeper = ProveConfig {
            k: 3,
            ..ProveConfig::default()
        };
        assert_ne!(
            canonical_key(&q1, &q1, &sub, &cfg),
            canonical_key(&q1, &q1, &sub, &deeper)
        );
    }

    #[test]
    fn memo_caches_only_proved_outcomes() {
        let mut memo = ProveMemo::new();
        memo.record("a".into(), &ProveOutcome::ProvedSymbolic);
        memo.record("b".into(), &ProveOutcome::BudgetExhausted { databases: 5 });
        memo.record(
            "c".into(),
            &ProveOutcome::SymbolicMismatch { detail: "x".into() },
        );
        assert_eq!(memo.len(), 1);
        assert!(memo.get("a").is_some());
        assert!(memo.get("b").is_none());
        assert_eq!(memo.hits(), 1);
    }
}
