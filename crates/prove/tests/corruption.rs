//! The prover refutes deliberately corrupted substitutes while genuine
//! matcher-produced ones prove clean.
//!
//! Same shape as `mv-verify`'s corruption suite: run the real matcher
//! over a (query, view) pair, assert the produced substitute *proves*
//! (symbolically or by exhausting the k = 2 space), then apply one
//! targeted unsound mutation and assert the prover pins it to MV301
//! (symbolic separation) or MV302 (enumerated counterexample). Every
//! refutation is additionally forced through the enumerative pass
//! (`symbolic: false`) and its counterexample **replayed** from the seed,
//! so each mutation comes with a concrete disagreeing database.
//!
//! The final two tests document checker *independence*: substitutes that
//! `mv-verify`'s syntactic rules accept (both the matcher and the
//! analyzer fold CHECK constraints into the antecedent without a NOT
//! NULL guard) but that mv-prove refutes with a NULL-row witness.

use mv_catalog::schema::{ForeignKey, TableBuilder};
use mv_catalog::tpch::{tpch_catalog, TpchTables};
use mv_catalog::{Catalog, ColumnId, ColumnType};
use mv_core::{MatchConfig, MatchingEngine};
use mv_expr::{BinOp, BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, OutputList, SpjgExpr, Substitute, ViewDef};
use mv_prove::{prove, prove_diagnostics, replay, ProveConfig, ProveCtx, ProveOutcome, Witness};
use mv_verify::{verify_substitute, Severity, VerifyContext};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

fn out(items: &[(u32, u32, &str)]) -> Vec<NamedExpr> {
    items
        .iter()
        .map(|(o, c, n)| NamedExpr::new(S::col(cr(*o, *c)), *n))
        .collect()
}

/// Run the matcher over one (query, view) pair and return the substitute
/// along with the engine (which owns the catalog and check constraints).
fn matched(query: &SpjgExpr, view: SpjgExpr, config: MatchConfig) -> (MatchingEngine, Substitute) {
    let (catalog, _) = tpch_catalog();
    let engine = MatchingEngine::new(catalog, config);
    engine.add_view(ViewDef::new("v", view)).unwrap();
    let mut subs = engine.find_substitutes(query);
    assert_eq!(subs.len(), 1, "the matcher must produce this substitute");
    let (_, sub) = subs.pop().unwrap();
    (engine, sub)
}

fn run_prove(
    engine: &MatchingEngine,
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
    cfg: &ProveConfig,
) -> ProveOutcome {
    let checks = engine.check_constraints();
    let ctx = ProveCtx::new(engine.catalog(), &checks);
    prove(&ctx, query, view, sub, cfg)
}

/// The error codes the prover reports for the triple.
fn prove_codes(
    engine: &MatchingEngine,
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
    cfg: &ProveConfig,
) -> Vec<&'static str> {
    let outcome = run_prove(engine, query, view, sub, cfg);
    let tables = mv_prove::pair_tables(query, view, sub);
    prove_diagnostics(&outcome, "v", "q", &tables, cfg)
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.rule.code())
        .collect()
}

fn assert_proves(engine: &MatchingEngine, query: &SpjgExpr, view: &SpjgExpr, sub: &Substitute) {
    let outcome = run_prove(engine, query, view, sub, &ProveConfig::default());
    assert!(
        outcome.is_proved(),
        "genuine substitute failed to prove: {outcome:?}"
    );
    // The enumerative pass must agree with the symbolic one.
    let enum_cfg = ProveConfig {
        symbolic: false,
        ..ProveConfig::default()
    };
    let outcome = run_prove(engine, query, view, sub, &enum_cfg);
    assert!(
        outcome.is_proved(),
        "genuine substitute refuted by enumeration: {outcome:?}"
    );
}

/// Force the enumerative pass, extract the witness, and replay it from
/// its seed: the replayed database must exhibit the same disagreement.
fn refute_and_replay(
    engine: &MatchingEngine,
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
) -> Witness {
    let cfg = ProveConfig {
        symbolic: false,
        ..ProveConfig::default()
    };
    let outcome = run_prove(engine, query, view, sub, &cfg);
    let ProveOutcome::Counterexample(w) = outcome else {
        panic!("expected an enumerated counterexample, got {outcome:?}");
    };
    let checks = engine.check_constraints();
    let ctx = ProveCtx::new(engine.catalog(), &checks);
    let replayed = replay(&ctx, query, view, sub, &cfg, w.seed).expect("seed within space");
    assert!(
        !replayed.diff.is_empty(),
        "replayed database no longer disagrees"
    );
    for ts in &mv_prove::pair_tables(query, view, sub) {
        assert_eq!(
            replayed.database.rows(*ts),
            w.database.rows(*ts),
            "replayed database differs from the witness"
        );
    }
    // The rendered diagnostic must carry the witness and the seed.
    let tables = mv_prove::pair_tables(query, view, sub);
    let diags = prove_diagnostics(
        &ProveOutcome::Counterexample(w.clone()),
        "v",
        "q",
        &tables,
        &cfg,
    );
    let detail = diags[0].to_json();
    assert!(detail.contains(&format!("seed={}", w.seed)));
    *w
}

/// The SPJ running pair: view keeps l_quantity > 10, the query narrows
/// to (10, 30]; the matcher compensates with a range predicate.
fn range_pair(t: &TpchTables) -> (SpjgExpr, SpjgExpr) {
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(10i64)),
        out(&[
            (0, 0, "l_orderkey"),
            (0, 4, "l_quantity"),
            (0, 5, "l_extendedprice"),
        ]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(10i64)),
            BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Le, S::lit(30i64)),
        ]),
        out(&[(0, 0, "l_orderkey"), (0, 5, "l_extendedprice")]),
    );
    (query, view)
}

/// Example 4's aggregate pair: view groups by o_custkey with
/// count_big(*) and sum(revenue); the scalar query rolls both up.
fn rollup_pair(t: &TpchTables) -> (SpjgExpr, SpjgExpr) {
    let revenue = S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)));
    let view = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(revenue.clone()), "revenue"),
        ],
    );
    let query = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![],
        vec![
            NamedAgg::new(AggFunc::Sum(revenue), "rev"),
            NamedAgg::new(AggFunc::CountStar, "n"),
        ],
    );
    (query, view)
}

// ---------------------------------------------------------------------
// Genuine substitutes prove
// ---------------------------------------------------------------------

#[test]
fn genuine_range_substitute_proves() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert!(!sub.predicates.is_empty(), "this pair needs compensation");
    assert_proves(&engine, &query, &view, &sub);
    // The SPJ pair is within the symbolic fragment: discharged without
    // enumerating a single database.
    let outcome = run_prove(&engine, &query, &view, &sub, &ProveConfig::default());
    assert!(matches!(outcome, ProveOutcome::ProvedSymbolic));
}

#[test]
fn genuine_rollup_substitute_proves_by_enumeration() {
    let (_, t) = tpch_catalog();
    let (query, view) = rollup_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert!(sub.regroups());
    // Aggregation is outside the symbolic fragment; the bounded space
    // must be exhausted instead.
    let outcome = run_prove(&engine, &query, &view, &sub, &ProveConfig::default());
    let ProveOutcome::ProvedBounded { databases } = outcome else {
        panic!("expected a bounded certificate, got {outcome:?}");
    };
    assert!(databases > 0);
}

// ---------------------------------------------------------------------
// Seeded unsound mutations (≥ 8), each pinned to MV301 or MV302 with a
// replayed counterexample
// ---------------------------------------------------------------------

/// Mutation 1 — dropped compensating range conjunct.
#[test]
fn dropped_range_compensation_refuted() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());

    let mut bad = sub;
    bad.predicates.clear();
    let cfg = ProveConfig::default();
    assert_eq!(prove_codes(&engine, &query, &view, &bad, &cfg), ["MV301"]);
    // The witness keeps a quantity the query filters out (> 30).
    let w = refute_and_replay(&engine, &query, &view, &bad);
    assert!(w.substitute_rows.len() > w.query_rows.len());
}

/// Mutation 2 — widened compensating range (`<= 30` loosened to
/// `<= 40`): the classic off-by-constant unsoundness.
#[test]
fn widened_range_compensation_refuted() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());

    let mut bad = sub;
    bad.predicates = vec![BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Le, S::lit(40i64))];
    let cfg = ProveConfig::default();
    assert_eq!(prove_codes(&engine, &query, &view, &bad, &cfg), ["MV301"]);
    // 31..=40 lies inside the widened bound but outside the query's: the
    // domain contains 31 (30 + 1) and 39 (40 - 1), so k = 1 already
    // exhibits the gap.
    refute_and_replay(&engine, &query, &view, &bad);
}

/// Mutation 3 — over-strong compensating range drops query rows.
#[test]
fn contradictory_range_compensation_refuted() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());

    let mut bad = sub;
    bad.predicates
        .push(BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Lt, S::lit(0i64)));
    let cfg = ProveConfig::default();
    assert_eq!(prove_codes(&engine, &query, &view, &bad, &cfg), ["MV301"]);
    let w = refute_and_replay(&engine, &query, &view, &bad);
    assert!(w.query_rows.len() > w.substitute_rows.len());
}

/// Mutation 4 — dropped compensating residual conjunct (a LIKE the
/// query needs).
#[test]
fn dropped_residual_compensation_refuted() {
    let (_, t) = tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.customer],
        BoolExpr::Literal(true),
        out(&[(0, 0, "c_custkey"), (0, 1, "c_name")]),
    );
    let query = SpjgExpr::spj(
        vec![t.customer],
        BoolExpr::Like {
            expr: S::col(cr(0, 1)),
            pattern: "%Best%".into(),
            negated: false,
        },
        out(&[(0, 0, "c_custkey")]),
    );
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert!(!sub.predicates.is_empty(), "this pair needs compensation");
    assert_proves(&engine, &query, &view, &sub);

    let mut bad = sub;
    bad.predicates.clear();
    let cfg = ProveConfig::default();
    assert_eq!(prove_codes(&engine, &query, &view, &bad, &cfg), ["MV301"]);
    // The string domain carries the LIKE pattern text plus a fresh value
    // that misses it, so enumeration finds a non-matching name.
    refute_and_replay(&engine, &query, &view, &bad);
}

/// Mutation 5 — compensating equality rewritten to equate the wrong
/// columns.
#[test]
fn wrong_equality_compensation_refuted() {
    let (_, t) = tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        out(&[
            (0, 0, "l_orderkey"),
            (0, 10, "l_shipdate"),
            (0, 11, "l_commitdate"),
        ]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::col_eq(cr(0, 10), cr(0, 11)),
        out(&[(0, 0, "l_orderkey")]),
    );
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert!(!sub.predicates.is_empty(), "this pair needs compensation");
    assert_proves(&engine, &query, &view, &sub);

    let mut bad = sub;
    // shipdate = commitdate replaced by shipdate = shipdate's neighbour
    // output — an equality the query never implied.
    bad.predicates = vec![BoolExpr::col_eq(cr(0, 0), cr(0, 1))];
    let cfg = ProveConfig::default();
    assert_eq!(prove_codes(&engine, &query, &view, &bad, &cfg), ["MV301"]);
    refute_and_replay(&engine, &query, &view, &bad);
}

/// Mutation 6 — wrong sum rollup: SUM over the view's count output
/// instead of its sum output.
#[test]
fn wrong_sum_rollup_source_refuted() {
    let (_, t) = tpch_catalog();
    let (query, view) = rollup_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());

    let mut bad = sub;
    if let OutputList::Aggregate { aggregates, .. } = &mut bad.output {
        // The query's Sum(revenue) must roll up from view column 2
        // (revenue); point it at column 1 (cnt) instead.
        aggregates[0].func = AggFunc::Sum(S::col(cr(0, 1)));
    }
    let cfg = ProveConfig::default();
    // Aggregation is outside the symbolic fragment: straight to MV302.
    assert_eq!(prove_codes(&engine, &query, &view, &bad, &cfg), ["MV302"]);
    refute_and_replay(&engine, &query, &view, &bad);
}

/// Mutation 7 — swapped output columns.
#[test]
fn swapped_output_columns_refuted() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());

    let mut bad = sub;
    if let OutputList::Spj(items) = &mut bad.output {
        items.swap(0, 1);
    }
    let cfg = ProveConfig::default();
    // Output expressions are compared only up to equivalence classes —
    // a swap is not a symbolic separation, so the enumerative pass must
    // deliver the verdict.
    assert_eq!(prove_codes(&engine, &query, &view, &bad, &cfg), ["MV302"]);
    refute_and_replay(&engine, &query, &view, &bad);
}

/// A two-table schema with a *nullable* foreign-key column: t(f) → s(k).
fn nullable_fk_catalog() -> (Catalog, mv_catalog::TableId, mv_catalog::TableId) {
    let mut catalog = Catalog::new();
    let s = catalog.add_table(
        TableBuilder::new("s")
            .col("k", ColumnType::Int)
            .primary_key(&["k"])
            .build(),
    );
    let t = catalog.add_table(
        TableBuilder::new("t")
            .col("id", ColumnType::Int)
            .nullable_col("f", ColumnType::Int)
            .primary_key(&["id"])
            .build(),
    );
    catalog.add_foreign_key(ForeignKey {
        name: "t_f".into(),
        from_table: t,
        from_columns: vec![ColumnId(1)],
        to_table: s,
        to_columns: vec![ColumnId(0)],
    });
    (catalog, t, s)
}

/// Mutation 8 — foreign-key join "elimination" over a *nullable* FK
/// column: the join t.f = s.k is not cardinality preserving because a
/// NULL f never joins, so answering `SELECT id, f FROM t` from a view
/// that joins t to s silently drops NULL rows. The witness is exactly
/// such a row.
#[test]
fn nullable_fk_elimination_refuted() {
    let (catalog, t, s) = nullable_fk_catalog();
    let query = SpjgExpr::spj(
        vec![t],
        BoolExpr::Literal(true),
        out(&[(0, 0, "id"), (0, 1, "f")]),
    );
    let view = SpjgExpr::spj(
        vec![t, s],
        BoolExpr::col_eq(cr(0, 1), cr(1, 0)),
        out(&[(0, 0, "id"), (0, 1, "f")]),
    );
    // Hand-crafted unsound substitute: a bare view scan.
    let sub = Substitute {
        view: mv_plan::ViewId(0),
        backjoins: vec![],
        predicates: vec![],
        output: OutputList::Spj(out(&[(0, 0, "id"), (0, 1, "f")])),
        freshness: mv_plan::Freshness::Fresh,
    };
    let checks = std::collections::HashMap::new();
    let ctx = ProveCtx::new(&catalog, &checks);
    let cfg = ProveConfig::default();
    let outcome = prove(&ctx, &query, &view, &sub, &cfg);
    let ProveOutcome::Counterexample(w) = outcome else {
        panic!("expected a counterexample, got {outcome:?}");
    };
    // The witness database must contain a NULL-f row the view loses.
    assert!(
        w.database
            .rows(t)
            .iter()
            .any(|r| r[1] == mv_catalog::Value::Null),
        "witness should hinge on a NULL foreign-key value"
    );
    let replayed = replay(&ctx, &query, &view, &sub, &cfg, w.seed).expect("replayable");
    assert!(!replayed.diff.is_empty());
}

// ---------------------------------------------------------------------
// Checker independence: accepted by mv-verify, refuted by mv-prove
// ---------------------------------------------------------------------

/// Both the matcher and mv-verify fold CHECK constraints into the
/// query's antecedent without guarding on NOT NULL — but SQL's CHECK
/// passes on UNKNOWN, so `CHECK (x > 0)` on a *nullable* column admits
/// NULL rows that fail the view predicate `x > 0`. The matcher builds a
/// filter-free substitute, mv-verify reports nothing, and mv-prove
/// refutes it with a NULL-row witness: the two checkers are genuinely
/// independent.
#[test]
fn check_constraint_on_nullable_column_missed_by_verify_caught_by_prove() {
    let mut catalog = Catalog::new();
    let t = catalog.add_table(
        TableBuilder::new("t")
            .col("id", ColumnType::Int)
            .nullable_col("x", ColumnType::Int)
            .primary_key(&["id"])
            .build(),
    );
    // The whole point is a substitute mv-prove refutes — keep the
    // debug-build prove oracle out of `find_substitutes` itself.
    let engine = MatchingEngine::new(
        catalog,
        MatchConfig {
            prove_budget: 0,
            ..MatchConfig::default()
        },
    );
    engine
        .add_check_constraint(t, BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Gt, S::lit(0i64)))
        .unwrap();
    let view = SpjgExpr::spj(
        vec![t],
        BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Gt, S::lit(0i64)),
        out(&[(0, 0, "id"), (0, 1, "x")]),
    );
    let query = SpjgExpr::spj(
        vec![t],
        BoolExpr::Literal(true),
        out(&[(0, 0, "id"), (0, 1, "x")]),
    );
    engine.add_view(ViewDef::new("v", view.clone())).unwrap();
    let mut subs = engine.find_substitutes(&query);
    assert_eq!(
        subs.len(),
        1,
        "the matcher accepts the rewrite via check-constraint folding"
    );
    let (_, sub) = subs.pop().unwrap();

    // mv-verify: clean — its syntactic rules fold the check the same way.
    let checks = engine.check_constraints();
    let vctx = VerifyContext::new(engine.catalog(), &checks);
    let verify_errors: Vec<_> = verify_substitute(&vctx, &query, &view, &sub, "v", "q")
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        verify_errors.is_empty(),
        "mv-verify accepts this substitute: {verify_errors:?}"
    );

    // mv-prove: refuted. The symbolic pass only trusts checks over NOT
    // NULL columns, so the view's x > 0 is unmatched on the query side.
    let cfg = ProveConfig::default();
    assert_eq!(prove_codes(&engine, &query, &view, &sub, &cfg), ["MV301"]);

    // And the enumerative pass produces the concrete NULL-row witness.
    let w = refute_and_replay(&engine, &query, &view, &sub);
    assert!(
        w.database
            .rows(t)
            .iter()
            .any(|r| r[1] == mv_catalog::Value::Null),
        "witness should be a NULL row passing the CHECK but failing the view predicate"
    );
}

/// The same blind spot through the FK-elimination path does not arise on
/// the §5 workload (it declares no check constraints), so the lint gate
/// stays clean — this test pins that the prover's verdicts and the
/// analyzer's agree everywhere checks are absent: a mutated substitute
/// flagged by mv-verify is also refuted by mv-prove.
#[test]
fn prover_and_analyzer_agree_on_syntactic_mutations() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());

    let mut bad = sub;
    bad.predicates.clear();
    let checks = engine.check_constraints();
    let vctx = VerifyContext::new(engine.catalog(), &checks);
    let verify_errors: Vec<_> = verify_substitute(&vctx, &query, &view, &bad, "v", "q")
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.rule.code())
        .collect();
    assert_eq!(verify_errors, ["MV008"]);
    let cfg = ProveConfig::default();
    assert_eq!(prove_codes(&engine, &query, &view, &bad, &cfg), ["MV301"]);
}
