//! Parallel enumeration is an invisible optimization: for every pair and
//! budget, `jobs = N` must return the same verdict, the same counterexample
//! seed, and the same budget accounting as `jobs = 1`.
//!
//! These tests drive the *public* API (`prove` / `prove_with_memo` /
//! `replay`) over matcher-produced TPC-H substitutes — the chunked-driver
//! internals have their own unit tests in `src/enumerative.rs` that force
//! the parallel path below its size threshold.

use mv_catalog::tpch::{tpch_catalog, TpchTables};
use mv_core::{MatchConfig, MatchingEngine};
use mv_expr::{BinOp, BoolExpr, ColRef, ScalarExpr as S};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, SpjgExpr, Substitute, ViewDef};
use mv_prove::{prove, prove_with_memo, replay, ProveConfig, ProveCtx, ProveMemo, ProveOutcome};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

/// Example 4's rollup pair: outside the symbolic fragment, so every
/// verdict comes from the enumerative pass.
fn rollup_pair(t: &TpchTables) -> (SpjgExpr, SpjgExpr) {
    let revenue = S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)));
    let view = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(revenue.clone()), "revenue"),
        ],
    );
    let query = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![],
        vec![
            NamedAgg::new(AggFunc::Sum(revenue), "rev"),
            NamedAgg::new(AggFunc::CountStar, "n"),
        ],
    );
    (query, view)
}

fn matched(query: &SpjgExpr, view: SpjgExpr) -> (MatchingEngine, Substitute) {
    let (catalog, _) = tpch_catalog();
    let engine = MatchingEngine::new(catalog, MatchConfig::default());
    engine.add_view(ViewDef::new("v", view)).unwrap();
    let mut subs = engine.find_substitutes(query);
    assert_eq!(subs.len(), 1, "the matcher must produce this substitute");
    let (_, sub) = subs.pop().unwrap();
    (engine, sub)
}

fn cfg_with_jobs(jobs: usize) -> ProveConfig {
    ProveConfig {
        symbolic: false,
        jobs,
        ..ProveConfig::default()
    }
}

#[test]
fn parallel_proof_matches_serial_on_proved_pair() {
    let (_, t) = tpch_catalog();
    let (query, view) = rollup_pair(&t);
    let (engine, sub) = matched(&query, view.clone());
    let checks = engine.check_constraints();
    let ctx = ProveCtx::new(engine.catalog(), &checks);
    let serial = prove(&ctx, &query, &view, &sub, &cfg_with_jobs(1));
    let parallel = prove(&ctx, &query, &view, &sub, &cfg_with_jobs(4));
    let ProveOutcome::ProvedBounded { databases: a } = serial else {
        panic!("expected a bounded certificate, got {serial:?}");
    };
    let ProveOutcome::ProvedBounded { databases: b } = parallel else {
        panic!("expected a bounded certificate, got {parallel:?}");
    };
    assert_eq!(a, b, "parallel certificate covers a different space");
}

#[test]
fn parallel_counterexample_matches_serial_seed_and_replays() {
    let (_, t) = tpch_catalog();
    let (query, view) = rollup_pair(&t);
    let (engine, mut sub) = matched(&query, view.clone());
    // Corrupt the rollup: drop the count rollup's weighting by renaming a
    // SUM argument to a constant — the substitute now disagrees wherever
    // the view has a group with more than one contributing row.
    match &mut sub.output {
        mv_plan::OutputList::Aggregate { aggregates, .. } => {
            aggregates[0].func = AggFunc::Sum(S::lit(1i64));
        }
        other => panic!("rollup substitute must aggregate, got {other:?}"),
    }
    let checks = engine.check_constraints();
    let ctx = ProveCtx::new(engine.catalog(), &checks);
    let serial = prove(&ctx, &query, &view, &sub, &cfg_with_jobs(1));
    let parallel = prove(&ctx, &query, &view, &sub, &cfg_with_jobs(4));
    let ProveOutcome::Counterexample(sw) = serial else {
        panic!("expected a counterexample, got {serial:?}");
    };
    let ProveOutcome::Counterexample(pw) = parallel else {
        panic!("expected a counterexample, got {parallel:?}");
    };
    assert_eq!(
        sw.seed, pw.seed,
        "parallel cancellation must still report the first refuting index"
    );
    assert_eq!(sw.query_rows, pw.query_rows);
    assert_eq!(sw.substitute_rows, pw.substitute_rows);
    // The shared seed replays to the same disagreeing database.
    let replayed = replay(&ctx, &query, &view, &sub, &cfg_with_jobs(4), pw.seed)
        .expect("seed within the bounded space");
    assert!(!replayed.diff.is_empty(), "replayed database agrees");
    for ts in &mv_prove::pair_tables(&query, &view, &sub) {
        assert_eq!(replayed.database.rows(*ts), pw.database.rows(*ts));
    }
}

#[test]
fn parallel_budget_accounting_matches_serial() {
    let (_, t) = tpch_catalog();
    let (query, view) = rollup_pair(&t);
    let (engine, sub) = matched(&query, view.clone());
    let checks = engine.check_constraints();
    let ctx = ProveCtx::new(engine.catalog(), &checks);
    // Find the space size, then starve the budget below it.
    let full = prove(&ctx, &query, &view, &sub, &cfg_with_jobs(1));
    let ProveOutcome::ProvedBounded { databases: space } = full else {
        panic!("expected a bounded certificate, got {full:?}");
    };
    let starved = |jobs: usize| ProveConfig {
        max_databases: space / 2,
        ..cfg_with_jobs(jobs)
    };
    let serial = prove(&ctx, &query, &view, &sub, &starved(1));
    let ProveOutcome::BudgetExhausted { databases: a } = serial else {
        panic!("expected budget exhaustion, got {serial:?}");
    };
    for jobs in [2, 4, 7] {
        let parallel = prove(&ctx, &query, &view, &sub, &starved(jobs));
        let ProveOutcome::BudgetExhausted { databases: b } = parallel else {
            panic!("expected budget exhaustion, got {parallel:?}");
        };
        assert_eq!(a, b, "MV303 accounting drifted at jobs={jobs}");
    }
}

#[test]
fn memo_short_circuits_repeated_proofs() {
    let (_, t) = tpch_catalog();
    let (query, view) = rollup_pair(&t);
    let (engine, sub) = matched(&query, view.clone());
    let checks = engine.check_constraints();
    let ctx = ProveCtx::new(engine.catalog(), &checks);
    let cfg = cfg_with_jobs(0);
    let mut memo = ProveMemo::new();
    let first = prove_with_memo(&ctx, &query, &view, &sub, &cfg, &mut memo);
    assert!(first.is_proved());
    assert_eq!(memo.len(), 1);
    assert_eq!(memo.hits(), 0);
    // A renamed copy of the same problem hits the canonical cache.
    let mut renamed = query.clone();
    if let mv_plan::OutputList::Aggregate { aggregates, .. } = &mut renamed.output {
        aggregates[0].name = "other_name".into();
    }
    let second = prove_with_memo(&ctx, &renamed, &view, &sub, &cfg, &mut memo);
    assert!(second.is_proved());
    assert_eq!(memo.hits(), 1, "renamed outputs must share the cache entry");
}
