//! Properties of the bounded database enumerator (`mv_data::enumerate`):
//! exhaustive and duplicate-free up to k (counts match closed forms and
//! a brute-force cross-check), every visited database satisfies the
//! declared FK, key, and check constraints, and the enumeration order is
//! deterministic — which is what makes `MV302` seeds replayable.

use mv_catalog::schema::{ForeignKey, TableBuilder};
use mv_catalog::{Catalog, ColumnId, ColumnType, TableId, Value};
use mv_data::{topo_order, ColumnDomain, EnumOutcome, EnumSpec, Enumerator, TableSpec};
use mv_expr::{classify, BoolExpr, CmpOp, ColRef, Conjunct, ScalarExpr as S};
use std::collections::{HashMap, HashSet};

fn ints(values: &[i64]) -> ColumnDomain {
    ColumnDomain::of(values.iter().map(|&v| Value::Int(v)).collect())
}

/// A two-table FK schema: s(k pk) ← t(f nullable FK, x).
fn fk_schema() -> (Catalog, TableId, TableId) {
    let mut catalog = Catalog::new();
    let s = catalog.add_table(
        TableBuilder::new("s")
            .col("k", ColumnType::Int)
            .primary_key(&["k"])
            .build(),
    );
    let t = catalog.add_table(
        TableBuilder::new("t")
            .nullable_col("f", ColumnType::Int)
            .col("x", ColumnType::Int)
            .build(),
    );
    catalog.add_foreign_key(ForeignKey {
        name: "t_f".into(),
        from_table: t,
        from_columns: vec![ColumnId(0)],
        to_table: s,
        to_columns: vec![ColumnId(0)],
    });
    (catalog, s, t)
}

fn fk_spec(s: TableId, t: TableId, k: usize) -> EnumSpec {
    EnumSpec {
        tables: vec![
            TableSpec {
                table: s,
                columns: vec![ints(&[1, 2])],
            },
            TableSpec {
                table: t,
                columns: vec![
                    ColumnDomain {
                        values: vec![Value::Int(1), Value::Int(2)],
                        with_null: true,
                    },
                    ints(&[7]),
                ],
            },
        ],
        max_rows: k,
    }
}

fn serialize(db: &mv_data::Database, tables: &[TableId]) -> String {
    let mut out = String::new();
    for &t in tables {
        out.push('|');
        for row in db.rows(t) {
            out.push('[');
            for v in row {
                out.push_str(&v.to_string());
                out.push(',');
            }
            out.push(']');
        }
    }
    out
}

fn choose(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
}

/// Single keyed table: the database count matches the closed form
/// `sum_{j=0..k} C(d, j) * m^j` is wrong in general (pk collisions), but
/// with the pk column holding `d` values and a free column holding `m`,
/// the count is `sum_j C(d, j) * m^j` — each pk choice is a set, each
/// free column independent.
#[test]
fn keyed_table_count_matches_closed_form() {
    let mut catalog = Catalog::new();
    let t = catalog.add_table(
        TableBuilder::new("t")
            .col("pk", ColumnType::Int)
            .col("m", ColumnType::Int)
            .primary_key(&["pk"])
            .build(),
    );
    for k in 0..=3usize {
        let spec = EnumSpec {
            tables: vec![TableSpec {
                table: t,
                columns: vec![ints(&[0, 1, 2, 3]), ints(&[10, 20])],
            }],
            max_rows: k,
        };
        let checks = HashMap::new();
        let e = Enumerator::new(&catalog, &checks, &spec);
        let (count, exhausted) = e.count(u64::MAX);
        assert!(exhausted);
        let (d, m) = (4u64, 2u64);
        let expected: u64 = (0..=k as u64).map(|j| choose(d, j) * m.pow(j as u32)).sum();
        assert_eq!(count, expected, "bound k={k}");
    }
}

/// Keyless table: bag semantics — multisets of rows, `C(r + j - 1, j)`
/// per row count `j` over `r` candidate rows.
#[test]
fn keyless_table_count_matches_closed_form() {
    let mut catalog = Catalog::new();
    let t = catalog.add_table(TableBuilder::new("t").col("x", ColumnType::Int).build());
    let spec = EnumSpec {
        tables: vec![TableSpec {
            table: t,
            columns: vec![ints(&[0, 1, 2])],
        }],
        max_rows: 2,
    };
    let checks = HashMap::new();
    let e = Enumerator::new(&catalog, &checks, &spec);
    let (count, exhausted) = e.count(u64::MAX);
    assert!(exhausted);
    // 1 empty + 3 singletons + multisets of size 2: C(3+1,2) = 6.
    assert_eq!(count, 1 + 3 + 6);
}

/// Two-table FK schema: the enumerator's count equals an independent
/// brute-force count that builds every candidate database and filters by
/// the constraints directly.
#[test]
fn fk_schema_count_matches_brute_force() {
    let (catalog, s, t) = fk_schema();
    let spec = fk_spec(s, t, 2);
    let checks = HashMap::new();
    let e = Enumerator::new(&catalog, &checks, &spec);
    let (count, exhausted) = e.count(u64::MAX);
    assert!(exhausted);

    // Brute force: s-sets over {1,2} (pk => sets), t-bags over
    // {1,2,NULL} x {7} with FK validity: non-null f must be in s.
    let s_sets: Vec<Vec<i64>> = vec![vec![], vec![1], vec![2], vec![1, 2]];
    let t_rows = [Some(1i64), Some(2), None];
    let mut expected = 0u64;
    for s_set in &s_sets {
        // t-bags of size 0..=2 (multisets over valid rows).
        let valid: Vec<&Option<i64>> = t_rows
            .iter()
            .filter(|f| f.map(|v| s_set.contains(&v)).unwrap_or(true))
            .collect();
        let r = valid.len() as u64;
        expected += 1 + r + r * (r + 1) / 2; // sizes 0, 1, 2 (multisets)
    }
    assert_eq!(count, expected);
}

/// Every enumerated database satisfies FK constraints, key uniqueness,
/// and declared check constraints (UNKNOWN passes).
#[test]
fn all_databases_satisfy_constraints() {
    let (catalog, s, t) = fk_schema();
    let spec = fk_spec(s, t, 2);
    let mut checks: HashMap<TableId, Vec<Conjunct>> = HashMap::new();
    // CHECK (x <= 7) on t — trivially true for the domain, but exercises
    // the filter; and CHECK (k > 1) on s — prunes k = 1.
    checks.insert(
        t,
        classify(BoolExpr::cmp(
            S::col(ColRef::new(0, 1)),
            CmpOp::Le,
            S::lit(7i64),
        )),
    );
    checks.insert(
        s,
        classify(BoolExpr::cmp(
            S::col(ColRef::new(0, 0)),
            CmpOp::Gt,
            S::lit(1i64),
        )),
    );
    let e = Enumerator::new(&catalog, &checks, &spec);
    let mut seen = 0u64;
    let stats = e.for_each(u64::MAX, |_, db| {
        seen += 1;
        assert_eq!(db.check_foreign_keys(), 0, "FK violation enumerated");
        // Key uniqueness on s.
        let keys: Vec<_> = db.rows(s).iter().map(|r| r[0].clone()).collect();
        let set: HashSet<_> = keys.iter().cloned().collect();
        assert_eq!(keys.len(), set.len(), "pk collision enumerated");
        // The s check prunes k = 1 entirely.
        assert!(db.rows(s).iter().all(|r| r[0] != Value::Int(1)));
        true
    });
    assert_eq!(stats.outcome, EnumOutcome::Exhausted);
    assert_eq!(stats.databases, seen);
    assert!(seen > 0);
}

/// Duplicate-freeness: no database is visited twice.
#[test]
fn enumeration_is_duplicate_free() {
    let (catalog, s, t) = fk_schema();
    let spec = fk_spec(s, t, 2);
    let checks = HashMap::new();
    let e = Enumerator::new(&catalog, &checks, &spec);
    let mut seen: HashSet<String> = HashSet::new();
    let stats = e.for_each(u64::MAX, |_, db| {
        assert!(
            seen.insert(serialize(db, &[s, t])),
            "database enumerated twice"
        );
        true
    });
    assert_eq!(stats.databases as usize, seen.len());
}

/// Determinism: two walks produce the same sequence, and `database_at`
/// reconstructs exactly the i-th database — the seed-replay contract.
#[test]
fn enumeration_is_deterministic_and_seeds_replay() {
    let (catalog, s, t) = fk_schema();
    let spec = fk_spec(s, t, 2);
    let checks = HashMap::new();
    let e = Enumerator::new(&catalog, &checks, &spec);
    let walk = |budget: u64| {
        let mut v = Vec::new();
        e.for_each(budget, |i, db| {
            v.push((i, serialize(db, &[s, t])));
            true
        });
        v
    };
    let first = walk(u64::MAX);
    let second = walk(u64::MAX);
    assert_eq!(first, second, "enumeration order must be deterministic");
    // A budget-limited walk is a strict prefix.
    let prefix = walk(5);
    assert_eq!(prefix[..], first[..5]);
    // Seeds replay: every index reconstructs its database.
    for (i, ser) in first.iter().step_by(7) {
        let db = e.database_at(*i).expect("seed in space");
        assert_eq!(&serialize(&db, &[s, t]), ser, "seed {i}");
    }
    assert!(e.database_at(first.len() as u64).is_none());
}

/// `topo_order` places referenced tables first and refuses FK cycles.
#[test]
fn topo_order_respects_fks_and_rejects_cycles() {
    let (catalog, s, t) = fk_schema();
    assert_eq!(topo_order(&catalog, &[t, s]), Some(vec![s, t]));

    let mut cyc = Catalog::new();
    let a = cyc.add_table(
        TableBuilder::new("a")
            .col("x", ColumnType::Int)
            .primary_key(&["x"])
            .build(),
    );
    let b = cyc.add_table(
        TableBuilder::new("b")
            .col("y", ColumnType::Int)
            .primary_key(&["y"])
            .build(),
    );
    cyc.add_foreign_key_unchecked(ForeignKey {
        name: "a_b".into(),
        from_table: a,
        from_columns: vec![ColumnId(0)],
        to_table: b,
        to_columns: vec![ColumnId(0)],
    });
    cyc.add_foreign_key_unchecked(ForeignKey {
        name: "b_a".into(),
        from_table: b,
        from_columns: vec![ColumnId(0)],
        to_table: a,
        to_columns: vec![ColumnId(0)],
    });
    assert_eq!(topo_order(&cyc, &[a, b]), None);
}
