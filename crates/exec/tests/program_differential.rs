//! Differential property test: the compiled [`PlanProgram`] /
//! [`SubstituteProgram`] path must produce byte-identical row bags to the
//! tree-walking interpreter over random SPJG plans × enumerated databases.
//!
//! The generator is a hand-rolled splitmix64 stream (no external crates):
//! deterministic, so every failure names the plan seed that reproduces it.

use mv_catalog::schema::{ForeignKey, TableBuilder};
use mv_catalog::{Catalog, ColumnId, ColumnType, TableId, Value};
use mv_data::{ColumnDomain, Database, EnumSpec, Enumerator, TableSpec};
use mv_exec::{
    bag_diff, bag_eq, execute_spjg, execute_substitute_with, ExecScratch, PlanProgram, RowBag,
    SubstituteProgram,
};
use mv_expr::{BinOp, BoolExpr, CmpOp, ColRef, Conjunct, ScalarExpr};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, OutputList, SpjgExpr, Substitute, ViewId};
use std::collections::HashMap;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        splitmix64(&mut self.0)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

struct Fixture {
    catalog: Catalog,
    r: TableId,
    t: TableId,
}

/// Two tables with a key, a nullable FK, strings, floats and NULLs — every
/// value shape the executor distinguishes.
fn fixture() -> Fixture {
    let mut catalog = Catalog::new();
    let r = catalog.add_table(
        TableBuilder::new("r")
            .col("pk", ColumnType::Int)
            .nullable_col("a", ColumnType::Int)
            .nullable_col("s", ColumnType::Str)
            .primary_key(&["pk"])
            .build(),
    );
    let t = catalog.add_table(
        TableBuilder::new("t")
            .nullable_col("fk", ColumnType::Int)
            .nullable_col("b", ColumnType::Int)
            .col("c", ColumnType::Float)
            .build(),
    );
    catalog.add_foreign_key(ForeignKey {
        name: "t_fk".into(),
        from_table: t,
        from_columns: vec![ColumnId(0)],
        to_table: r,
        to_columns: vec![ColumnId(0)],
    });
    Fixture { catalog, r, t }
}

fn enum_spec(f: &Fixture) -> EnumSpec {
    let ints = |vals: &[i64], with_null: bool| ColumnDomain {
        values: vals.iter().map(|&v| Value::Int(v)).collect(),
        with_null,
    };
    EnumSpec {
        tables: vec![
            TableSpec {
                table: f.r,
                columns: vec![
                    ints(&[1, 2], false),
                    ints(&[0, 7], true),
                    ColumnDomain {
                        values: vec![Value::Str("steel wire".into())],
                        with_null: true,
                    },
                ],
            },
            TableSpec {
                table: f.t,
                columns: vec![
                    ints(&[1, 2], true),
                    ints(&[0], true),
                    ColumnDomain {
                        values: vec![Value::Float(1.5)],
                        with_null: false,
                    },
                ],
            },
        ],
        max_rows: 2,
    }
}

/// A random scalar expression over the given wide arity.
fn gen_scalar(rng: &mut Rng, occs: &[(u32, u32)], depth: u32) -> ScalarExpr {
    if depth == 0 || rng.chance(50) {
        if rng.chance(70) {
            let &(occ, arity) = &occs[rng.below(occs.len() as u64) as usize];
            ScalarExpr::col(ColRef::new(occ, rng.below(arity as u64) as u32))
        } else {
            match rng.below(3) {
                0 => ScalarExpr::lit(rng.below(5) as i64 - 1),
                1 => ScalarExpr::lit(Value::Float(rng.below(4) as f64 / 2.0)),
                _ => ScalarExpr::lit(Value::Null),
            }
        }
    } else {
        let op = match rng.below(4) {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            _ => BinOp::Div,
        };
        gen_scalar(rng, occs, depth - 1).binary(op, gen_scalar(rng, occs, depth - 1))
    }
}

fn gen_bool(rng: &mut Rng, occs: &[(u32, u32)], depth: u32) -> BoolExpr {
    if depth == 0 || rng.chance(40) {
        match rng.below(4) {
            0 => {
                let op = match rng.below(6) {
                    0 => CmpOp::Lt,
                    1 => CmpOp::Le,
                    2 => CmpOp::Eq,
                    3 => CmpOp::Ge,
                    4 => CmpOp::Gt,
                    _ => CmpOp::Ne,
                };
                BoolExpr::cmp(gen_scalar(rng, occs, 1), op, gen_scalar(rng, occs, 1))
            }
            1 => BoolExpr::Like {
                expr: gen_scalar(rng, occs, 0),
                pattern: if rng.chance(50) { "%steel%" } else { "a%" }.into(),
                negated: rng.chance(30),
            },
            2 => BoolExpr::IsNull {
                expr: gen_scalar(rng, occs, 1),
                negated: rng.chance(50),
            },
            _ => BoolExpr::cmp(
                gen_scalar(rng, occs, 0),
                CmpOp::Le,
                ScalarExpr::lit(rng.below(4) as i64),
            ),
        }
    } else {
        let parts = vec![
            gen_bool(rng, occs, depth - 1),
            gen_bool(rng, occs, depth - 1),
        ];
        match rng.below(3) {
            0 => BoolExpr::and(parts),
            1 => BoolExpr::or(parts),
            _ => BoolExpr::Not(Box::new(gen_bool(rng, occs, depth - 1))),
        }
    }
}

fn gen_plan(rng: &mut Rng, f: &Fixture) -> SpjgExpr {
    // 1–2 occurrences drawn from {r, t}; arities 3 each.
    let n_occ = 1 + rng.below(2) as usize;
    let mut tables = Vec::new();
    let mut occs: Vec<(u32, u32)> = Vec::new();
    for i in 0..n_occ {
        let t = if rng.chance(50) { f.r } else { f.t };
        tables.push(t);
        occs.push((i as u32, 3));
    }
    let mut preds = Vec::new();
    if n_occ == 2 {
        // An equijoin between int columns keeps join cardinality sane and
        // exercises the key-consumption schedule.
        preds.push(BoolExpr::col_eq(
            ColRef::new(0, rng.below(2) as u32),
            ColRef::new(1, rng.below(2) as u32),
        ));
    }
    for _ in 0..rng.below(3) {
        preds.push(gen_bool(rng, &occs, 2));
    }
    let pred = BoolExpr::and(preds);
    if rng.chance(60) {
        let n_out = 1 + rng.below(3) as usize;
        let items = (0..n_out)
            .map(|i| NamedExpr::new(gen_scalar(rng, &occs, 2), format!("o{i}")))
            .collect();
        SpjgExpr::spj(tables, pred, items)
    } else {
        let n_keys = rng.below(3) as usize;
        let group_by = (0..n_keys)
            .map(|i| NamedExpr::new(gen_scalar(rng, &occs, 1), format!("g{i}")))
            .collect();
        let mut aggs = vec![NamedAgg::new(AggFunc::CountStar, "cnt")];
        for i in 0..rng.below(3) {
            let arg = gen_scalar(rng, &occs, 1);
            let func = if rng.chance(50) {
                AggFunc::Sum(arg)
            } else {
                AggFunc::SumZero(arg)
            };
            aggs.push(NamedAgg::new(func, format!("s{i}")));
        }
        SpjgExpr::aggregate(tables, pred, group_by, aggs)
    }
}

const PLANS: u64 = 60;
const DBS_PER_PLAN: u64 = 150;

#[test]
fn compiled_plan_matches_interpreter_over_enumerated_databases() {
    let f = fixture();
    let spec = enum_spec(&f);
    let checks: HashMap<TableId, Vec<Conjunct>> = HashMap::new();
    let enumerator = Enumerator::new(&f.catalog, &checks, &spec);
    let mut rng = Rng(0x5EED_D1FF);
    let mut scratch = ExecScratch::new();
    let mut bag = RowBag::new();
    let mut checked = 0u64;
    for plan_idx in 0..PLANS {
        let plan = gen_plan(&mut rng, &f);
        let prog = PlanProgram::compile(&f.catalog, &plan);
        // Stride through the space so later (fuller) databases are hit too.
        let stride = 1 + plan_idx % 7;
        enumerator.for_each(DBS_PER_PLAN * stride, |seed, db| {
            if seed % stride != 0 {
                return true;
            }
            let want = execute_spjg(db, &plan);
            prog.execute(db, &mut scratch, &mut bag);
            let got = bag.to_rows();
            assert!(
                bag_eq(&got, &want),
                "plan {plan_idx} seed {seed}: {:?}\nplan: {plan:?}",
                bag_diff(&got, &want)
            );
            checked += 1;
            true
        });
    }
    assert!(checked > 2000, "differential coverage too thin: {checked}");
}

#[test]
fn compiled_substitute_matches_interpreter_over_enumerated_databases() {
    let f = fixture();
    let spec = enum_spec(&f);
    let checks: HashMap<TableId, Vec<Conjunct>> = HashMap::new();
    let enumerator = Enumerator::new(&f.catalog, &checks, &spec);
    let mut rng = Rng(0xBAC_0FF);
    let mut scratch = ExecScratch::new();
    let mut vbag = RowBag::new();
    let mut sbag = RowBag::new();
    // View: r's three columns verbatim; substitutes compensate over the
    // view outputs, optionally backjoining r through the pk in output 0.
    let view = SpjgExpr::spj(
        vec![f.r],
        BoolExpr::Literal(true),
        vec![
            NamedExpr::new(ScalarExpr::col(ColRef::new(0, 0)), "pk"),
            NamedExpr::new(ScalarExpr::col(ColRef::new(0, 1)), "a"),
            NamedExpr::new(ScalarExpr::col(ColRef::new(0, 2)), "s"),
        ],
    );
    let vprog = PlanProgram::compile(&f.catalog, &view);
    let mut checked = 0u64;
    for sub_idx in 0..40u64 {
        let backjoin = rng.chance(50);
        // Substitute column space: 3 view outputs (+3 backjoined r cols).
        let occs: Vec<(u32, u32)> = vec![(0, if backjoin { 6 } else { 3 })];
        let backjoins = if backjoin {
            vec![mv_plan::BackJoin {
                table: f.r,
                key: vec![(0, ColumnId(0))],
            }]
        } else {
            vec![]
        };
        let mut predicates = Vec::new();
        for _ in 0..rng.below(3) {
            predicates.push(gen_bool(&mut rng, &occs, 2));
        }
        let output = if rng.chance(60) {
            OutputList::Spj(
                (0..1 + rng.below(2))
                    .map(|i| NamedExpr::new(gen_scalar(&mut rng, &occs, 2), format!("o{i}")))
                    .collect(),
            )
        } else {
            OutputList::Aggregate {
                group_by: (0..rng.below(2))
                    .map(|i| NamedExpr::new(gen_scalar(&mut rng, &occs, 1), format!("g{i}")))
                    .collect(),
                aggregates: vec![
                    NamedAgg::new(AggFunc::CountStar, "cnt"),
                    NamedAgg::new(AggFunc::Sum(gen_scalar(&mut rng, &occs, 1)), "s"),
                ],
            }
        };
        let sub = Substitute {
            view: ViewId(0),
            backjoins,
            predicates,
            output,
            freshness: mv_plan::Freshness::Fresh,
        };
        let sprog = SubstituteProgram::compile(&f.catalog, &sub);
        enumerator.for_each(120, |seed, db| {
            let view_rows = execute_spjg(db, &view);
            let want = execute_substitute_with(db, &view_rows, &sub);
            vprog.execute(db, &mut scratch, &mut vbag);
            sprog.execute(db, &vbag, &mut scratch, &mut sbag);
            let got = sbag.to_rows();
            assert!(
                bag_eq(&got, &want),
                "sub {sub_idx} seed {seed}: {:?}\nsub: {sub:?}",
                bag_diff(&got, &want)
            );
            checked += 1;
            true
        });
    }
    assert!(checked > 2000, "differential coverage too thin: {checked}");
}

/// Directed SQL-semantics pin: `SUM` over an all-NULL group is NULL (not
/// 0), a group emptied by the predicate vanishes entirely, and a *scalar*
/// aggregate over empty input still yields its one row with `COUNT(*)` 0,
/// `SUM` NULL and `SumZero` 0 — identically in the tree-walk interpreter
/// and the compiled program, whose `arg_col` fast path (bare-column sum
/// argument) and `fast_cmp` predicate path both fire here. Incremental
/// maintenance makes emptied and all-NULL groups common, so these cases
/// are pinned directly instead of hoping the random sweep hits them.
#[test]
fn sum_null_semantics_match_between_paths() {
    let f = fixture();
    let mut db = Database::new(f.catalog.clone());
    // t(fk, b, c): three groups keyed on fk.
    //   fk=1 — both b NULL: COUNT(*)=2, SUM(b)=NULL.
    //   fk=2 — b ∈ {5, NULL}: COUNT(*)=2, SUM(b)=5.
    //   fk=3 — its only row rejected by the b < 10 predicate: no group.
    db.load(
        f.t,
        vec![
            vec![Value::Int(1), Value::Null, Value::Float(0.0)],
            vec![Value::Int(1), Value::Null, Value::Float(0.0)],
            vec![Value::Int(2), Value::Int(5), Value::Float(0.0)],
            vec![Value::Int(2), Value::Null, Value::Float(0.0)],
            vec![Value::Int(3), Value::Int(50), Value::Float(0.0)],
        ],
    );
    let col = |c: u32| ScalarExpr::col(ColRef::new(0, c));
    let grouped_all = SpjgExpr::aggregate(
        vec![f.t],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(col(0), "fk")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(col(1)), "sum_b"),
        ],
    );
    let grouped_filtered = SpjgExpr::aggregate(
        vec![f.t],
        BoolExpr::cmp(col(1), CmpOp::Lt, ScalarExpr::lit(10i64)),
        vec![NamedExpr::new(col(0), "fk")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(col(1)), "sum_b"),
        ],
    );
    let scalar_empty = SpjgExpr::aggregate(
        vec![f.t],
        BoolExpr::cmp(col(1), CmpOp::Lt, ScalarExpr::lit(-100i64)),
        vec![],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(col(1)), "sum_b"),
            NamedAgg::new(AggFunc::SumZero(col(1)), "sum0_b"),
        ],
    );
    let mut scratch = ExecScratch::new();
    let mut bag = RowBag::new();
    let mut check = |plan: &SpjgExpr, want: &[Vec<Value>], label: &str| {
        let interp = execute_spjg(&db, plan);
        assert!(
            bag_eq(&interp, want),
            "{label} interpreter: {:?}",
            bag_diff(&interp, want)
        );
        let prog = PlanProgram::compile(&f.catalog, plan);
        prog.execute(&db, &mut scratch, &mut bag);
        let got = bag.to_rows();
        assert!(
            bag_eq(&got, want),
            "{label} compiled: {:?}",
            bag_diff(&got, want)
        );
    };
    check(
        &grouped_all,
        &[
            vec![Value::Int(1), Value::Int(2), Value::Null],
            vec![Value::Int(2), Value::Int(2), Value::Int(5)],
            vec![Value::Int(3), Value::Int(1), Value::Int(50)],
        ],
        "all-NULL group",
    );
    check(
        &grouped_filtered,
        // fk=1 gone (NULL b fails b < 10), fk=3 gone (50 fails): only the
        // fk=2 row with b=5 survives its group.
        &[vec![Value::Int(2), Value::Int(1), Value::Int(5)]],
        "emptied groups",
    );
    check(
        &scalar_empty,
        &[vec![Value::Int(0), Value::Null, Value::Int(0)]],
        "scalar aggregate over empty input",
    );
}
