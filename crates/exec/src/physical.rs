//! Interpreter for optimizer-produced physical plans.

use crate::agg::GroupAcc;
use mv_catalog::Value;
use mv_data::{Database, Row};
use mv_expr::ColRef;
use mv_plan::{PhysicalPlan, ViewId};
use std::collections::HashMap;

/// Storage for materialized view contents, addressed by [`ViewId`].
#[derive(Debug, Clone, Default)]
pub struct ViewStore {
    views: HashMap<ViewId, Vec<Row>>,
}

impl ViewStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store (or replace) the contents of a view.
    pub fn put(&mut self, view: ViewId, rows: Vec<Row>) {
        self.views.insert(view, rows);
    }

    /// The rows of a view (empty if never materialized).
    pub fn rows(&self, view: ViewId) -> &[Row] {
        self.views.get(&view).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

/// Row accessor under the physical-plan convention (`occ` ignored, `col` =
/// input position).
fn get<'a>(row: &'a [Value]) -> impl Fn(ColRef) -> Value + 'a {
    move |c: ColRef| row[c.col.0 as usize].clone()
}

/// Execute a physical plan to completion.
pub fn execute_plan(db: &Database, views: &ViewStore, plan: &PhysicalPlan) -> Vec<Row> {
    match plan {
        PhysicalPlan::TableScan { table } => db.rows(*table).to_vec(),
        PhysicalPlan::ViewScan { view } => views.rows(*view).to_vec(),
        PhysicalPlan::Filter { input, predicate } => execute_plan(db, views, input)
            .into_iter()
            .filter(|row| predicate.eval(&get(row)) == Some(true))
            .collect(),
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let lrows = execute_plan(db, views, left);
            let rrows = execute_plan(db, views, right);
            let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
            for row in &lrows {
                let key: Vec<Value> = left_keys.iter().map(|&k| row[k].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                table.entry(key).or_default().push(row);
            }
            let mut out = Vec::new();
            for rrow in &rrows {
                let key: Vec<Value> = right_keys.iter().map(|&k| rrow[k].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for lrow in matches {
                        let mut joined: Row = (*lrow).clone();
                        joined.extend(rrow.iter().cloned());
                        match residual {
                            Some(p) if p.eval(&get(&joined)) != Some(true) => {}
                            _ => out.push(joined),
                        }
                    }
                }
            }
            out
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let lrows = execute_plan(db, views, left);
            let rrows = execute_plan(db, views, right);
            let mut out = Vec::new();
            for lrow in &lrows {
                for rrow in &rrows {
                    let mut joined = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    match predicate {
                        Some(p) if p.eval(&get(&joined)) != Some(true) => {}
                        _ => out.push(joined),
                    }
                }
            }
            out
        }
        PhysicalPlan::Project { input, exprs } => execute_plan(db, views, input)
            .into_iter()
            .map(|row| exprs.iter().map(|e| e.eval(&get(&row))).collect())
            .collect(),
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let rows = execute_plan(db, views, input);
            let mut groups: HashMap<Vec<Value>, GroupAcc> = HashMap::new();
            for row in &rows {
                let key: Vec<Value> = group_by.iter().map(|g| g.eval(&get(row))).collect();
                groups
                    .entry(key)
                    .or_insert_with(|| GroupAcc::new(aggregates.len()))
                    .add(aggregates, &get(row));
            }
            if groups.is_empty() && group_by.is_empty() {
                groups.insert(Vec::new(), GroupAcc::new(aggregates.len()));
            }
            groups
                .into_iter()
                .map(|(mut key, acc)| {
                    key.extend(acc.finish(aggregates));
                    key
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::bag_eq;
    use crate::spjg::execute_spjg;
    use mv_data::{generate_tpch, TpchScale};
    use mv_expr::BoolExpr;
    use mv_expr::{CmpOp, ScalarExpr as S};
    use mv_plan::{AggFunc, NamedExpr, SpjgExpr};

    fn cr(col: u32) -> ColRef {
        ColRef::new(0, col)
    }

    #[test]
    fn hash_join_plan_equals_spjg_oracle() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 23);
        // Plan: lineitem JOIN orders ON l_orderkey = o_orderkey, project
        // l_partkey and o_custkey.
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(PhysicalPlan::TableScan { table: t.lineitem }),
                right: Box::new(PhysicalPlan::TableScan { table: t.orders }),
                left_keys: vec![0],
                right_keys: vec![0],
                residual: None,
            }),
            exprs: vec![S::col(cr(1)), S::col(cr(17))], // l_partkey, o_custkey
        };
        let got = execute_plan(&db, &ViewStore::new(), &plan);
        let oracle = SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            BoolExpr::col_eq(ColRef::new(0, 0), ColRef::new(1, 0)),
            vec![
                NamedExpr::new(S::col(ColRef::new(0, 1)), "l_partkey"),
                NamedExpr::new(S::col(ColRef::new(1, 1)), "o_custkey"),
            ],
        );
        let want = execute_spjg(&db, &oracle);
        assert!(bag_eq(&got, &want));
    }

    #[test]
    fn filter_and_aggregate_plan() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 23);
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::TableScan { table: t.orders }),
                predicate: BoolExpr::cmp(S::col(cr(1)), CmpOp::Le, S::lit(10i64)),
            }),
            group_by: vec![S::col(cr(1))],
            aggregates: vec![AggFunc::CountStar, AggFunc::Sum(S::col(cr(3)))],
        };
        let got = execute_plan(&db, &ViewStore::new(), &plan);
        for row in &got {
            let Value::Int(ck) = row[0] else { panic!() };
            assert!(ck <= 10);
        }
        let total: i64 = got
            .iter()
            .map(|r| match r[1] {
                Value::Int(c) => c,
                _ => panic!(),
            })
            .sum();
        let expected = db
            .rows(t.orders)
            .iter()
            .filter(|r| matches!(r[1], Value::Int(v) if v <= 10))
            .count() as i64;
        assert_eq!(total, expected);
    }

    #[test]
    fn view_scan_reads_store() {
        let (db, _) = generate_tpch(&TpchScale::tiny(), 23);
        let mut store = ViewStore::new();
        store.put(ViewId(3), vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let plan = PhysicalPlan::ViewScan { view: ViewId(3) };
        assert_eq!(execute_plan(&db, &store, &plan).len(), 2);
        let plan = PhysicalPlan::ViewScan { view: ViewId(9) };
        assert!(execute_plan(&db, &store, &plan).is_empty());
    }

    #[test]
    fn nested_loop_cross_join() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 23);
        let plan = PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::TableScan { table: t.region }),
            right: Box::new(PhysicalPlan::TableScan { table: t.nation }),
            predicate: Some(BoolExpr::cmp(
                S::col(cr(0)),
                CmpOp::Eq,
                S::col(ColRef::new(0, 5)), // r_regionkey = n_regionkey (pos 3+2)
            )),
        };
        let got = execute_plan(&db, &ViewStore::new(), &plan);
        assert_eq!(got.len(), 25); // every nation joins exactly one region
    }
}

#[cfg(test)]
mod residual_tests {
    use super::*;
    use mv_data::{generate_tpch, TpchScale};
    use mv_expr::{BoolExpr, CmpOp, ScalarExpr as S};

    /// Hash join with an extra residual predicate over the joined row.
    #[test]
    fn hash_join_residual_filters_pairs() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 31);
        // lineitem ⋈ orders on orderkey, keeping only pairs where the
        // lineitem shipped after the order date (always true by
        // construction) AND quantity <= 25 (roughly half).
        let residual = BoolExpr::and(vec![
            BoolExpr::cmp(
                S::col(ColRef::new(0, 10)),
                CmpOp::Gt,
                S::col(ColRef::new(0, 20)), // o_orderdate at 16 + 4
            ),
            BoolExpr::cmp(S::col(ColRef::new(0, 4)), CmpOp::Le, S::lit(25i64)),
        ]);
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::TableScan { table: t.lineitem }),
            right: Box::new(PhysicalPlan::TableScan { table: t.orders }),
            left_keys: vec![0],
            right_keys: vec![0],
            residual: Some(residual),
        };
        let rows = execute_plan(&db, &ViewStore::new(), &plan);
        let expected = db
            .rows(t.lineitem)
            .iter()
            .filter(|r| matches!(r[4], Value::Int(q) if q <= 25))
            .count();
        assert_eq!(rows.len(), expected);
    }

    /// NULL join keys never match (SQL semantics).
    #[test]
    fn null_keys_do_not_join() {
        use mv_catalog::schema::TableBuilder;
        use mv_catalog::{Catalog, ColumnType};
        let mut cat = Catalog::new();
        let a = cat.add_table(
            TableBuilder::new("a")
                .nullable_col("x", ColumnType::Int)
                .build(),
        );
        let b = cat.add_table(
            TableBuilder::new("b")
                .nullable_col("y", ColumnType::Int)
                .build(),
        );
        let mut db = mv_data::Database::new(cat);
        db.load(a, vec![vec![Value::Int(1)], vec![Value::Null]]);
        db.load(b, vec![vec![Value::Int(1)], vec![Value::Null]]);
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::TableScan { table: a }),
            right: Box::new(PhysicalPlan::TableScan { table: b }),
            left_keys: vec![0],
            right_keys: vec![0],
            residual: None,
        };
        let rows = execute_plan(&db, &ViewStore::new(), &plan);
        assert_eq!(rows.len(), 1, "only the 1-1 pair joins; NULLs never do");
    }
}
