//! A row-oriented in-memory execution engine.
//!
//! Three execution paths, all operating on [`mv_data::Database`] rows:
//!
//! * [`spjg::execute_spjg`] evaluates an SPJG block directly against base
//!   tables — the *correctness oracle* for everything else,
//! * [`substitute::execute_substitute`] evaluates a matcher-produced
//!   [`mv_plan::Substitute`] against a materialized view's rows,
//! * [`physical::execute_plan`] interprets an optimizer-produced
//!   [`mv_plan::PhysicalPlan`].
//!
//! Bag semantics throughout: duplicates are preserved exactly, and
//! [`compare::bag_eq`] provides multiset equality for tests. The central
//! soundness property of the whole reproduction is checked on top of this
//! crate: *whenever the matcher produces a substitute, executing it against
//! the materialized view returns exactly the same bag of rows as executing
//! the query against base data.*

pub mod agg;
pub mod compare;
pub mod physical;
pub mod program;
pub mod spjg;
pub mod substitute;

pub use compare::{bag_diff, bag_eq};
pub use physical::{execute_plan, ViewStore};
pub use program::{
    rowbag_eq, ExecScratch, PlanProgram, RowBag, SubstitutePipeline, SubstituteProgram,
};
pub use spjg::execute_spjg;
pub use substitute::{execute_substitute, execute_substitute_with, materialize_view};
