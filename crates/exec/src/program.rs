//! Compiled plan programs for the prove hot path.
//!
//! The enumerative prover evaluates the same `(query, view, substitute)`
//! triple over hundreds of thousands of tiny databases. Walking the
//! expression trees for every row of every database dominates that loop:
//! each `eval` call allocates closures, clones `Value`s for the accessor,
//! and rebuilds hash maps per database. This module flattens a plan into a
//! [`PlanProgram`] once — a postfix instruction stream per predicate and
//! output expression plus a precomputed join schedule — and evaluates it
//! over flat, reusable scratch buffers ([`ExecScratch`]).
//!
//! The execution representation never materializes joined rows: a joined
//! "row" is a tuple of `u32` row indices, one per table occurrence, and
//! every column reference resolves lazily through a [`Fetch`] back to the
//! database's own storage. Values are cloned only at the two places a bag
//! must own them — projected output cells and group keys on first insert —
//! so the per-database cost is a few tight loops over integer tuples with
//! no allocation on the common path. [`SubstitutePipeline`] extends the
//! same idea across the view boundary: when the view's output is a bare
//! column projection, the substitute runs directly over the view's join
//! tuples and the view rows are never materialized at all.
//!
//! The tree-walking interpreter in [`crate::spjg`] / [`crate::substitute`]
//! stays as the differential oracle: the compiled path must produce exactly
//! the same row bags, which `exec/tests/program_differential.rs` checks over
//! random plans × enumerated databases.

use crate::agg::SumAcc;
use mv_catalog::{Catalog, TableId, Value};
use mv_data::{Database, Row};
use mv_expr::like::like_match;
use mv_expr::scalar::eval_binop;
use mv_expr::{BinOp, BoolExpr, CmpOp, ColRef, Conjunct, OccId, ScalarExpr};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, OutputList, SpjgExpr, Substitute};

/// Bits of an [`Op::Col`] operand holding the column index; the rest holds
/// the table-occurrence index (plan programs) — substitute programs use the
/// whole operand as a flat position instead.
const COL_BITS: usize = 16;
const COL_MASK: usize = (1 << COL_BITS) - 1;

/// Upper bound on table occurrences per plan (and backjoins per
/// substitute): lets execution keep its per-occurrence scan table on the
/// stack instead of allocating per database.
const MAX_OCCS: usize = 16;

/// Resolve a fetch position to a value for the current index tuple. The
/// two executors address columns differently (packed `(occ, col)` versus
/// flat substitute-space positions), so the resolution is a trait and the
/// programs stay agnostic.
trait Fetch {
    fn at<'a>(&'a self, tuple: &'a [u32], pos: usize) -> &'a Value;
}

/// Plan-program resolution: `pos` packs `(occurrence, column)`;
/// `tuple[occ]` indexes that occurrence's scan.
struct PlanFetch<'a> {
    occ_rows: &'a [&'a [Row]],
}

impl Fetch for PlanFetch<'_> {
    #[inline]
    fn at<'a>(&'a self, tuple: &'a [u32], pos: usize) -> &'a Value {
        let occ = pos >> COL_BITS;
        &self.occ_rows[occ][tuple[occ] as usize][pos & COL_MASK]
    }
}

/// Substitute resolution over materialized view rows: positions below the
/// view arity index the view bag row `tuple[0]`; later positions fall into
/// backjoin segments, resolved against the backjoin table's own rows.
struct SubFetch<'a> {
    view: &'a RowBag,
    /// Flat position where each backjoin's column segment starts.
    bj_offs: &'a [usize],
    bj_rows: &'a [&'a [Row]],
}

impl Fetch for SubFetch<'_> {
    #[inline]
    fn at<'a>(&'a self, tuple: &'a [u32], pos: usize) -> &'a Value {
        if pos < self.view.arity {
            return &self.view.vals[tuple[0] as usize * self.view.arity + pos];
        }
        let seg = self
            .bj_offs
            .iter()
            .rposition(|&o| o <= pos)
            .expect("position past view arity with no backjoin segment");
        &self.bj_rows[seg][tuple[1 + seg] as usize][pos - self.bj_offs[seg]]
    }
}

/// Fused substitute resolution ([`SubstitutePipeline`]): view positions
/// compose through the view's column projection straight to base-table
/// storage; the view row is never materialized.
struct FusedFetch<'a> {
    /// Packed `(occ, col)` per view output position.
    view_cols: &'a [usize],
    /// Scans of the view plan's occurrences (`tuple[..n_view_occs]`).
    occ_rows: &'a [&'a [Row]],
    n_view_occs: usize,
    bj_offs: &'a [usize],
    bj_rows: &'a [&'a [Row]],
}

impl Fetch for FusedFetch<'_> {
    #[inline]
    fn at<'a>(&'a self, tuple: &'a [u32], pos: usize) -> &'a Value {
        if pos < self.view_cols.len() {
            let packed = self.view_cols[pos];
            let occ = packed >> COL_BITS;
            return &self.occ_rows[occ][tuple[occ] as usize][packed & COL_MASK];
        }
        let seg = self
            .bj_offs
            .iter()
            .rposition(|&o| o <= pos)
            .expect("position past view arity with no backjoin segment");
        &self.bj_rows[seg][tuple[self.n_view_occs + seg] as usize][pos - self.bj_offs[seg]]
    }
}

/// One postfix instruction. Value-producing ops work a value stack of
/// [`Slot`]s (fetch positions or literal-pool indices, so pushing a column
/// never clones); predicate ops work a tri-bool stack.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// Push a fetch position onto the value stack.
    Col(usize),
    /// Push literal-pool entry onto the value stack.
    Lit(usize),
    /// Pop two values, push the arithmetic result.
    Bin(BinOp),
    /// Pop two values, push a tri-bool comparison result.
    Cmp(CmpOp),
    /// Pop one value, push `expr [NOT] LIKE pattern`.
    Like { pat: usize, negated: bool },
    /// Pop one value, push `expr IS [NOT] NULL` (two-valued).
    IsNull { negated: bool },
    /// Push a constant tri-bool.
    PushBool(bool),
    /// Pop one tri-bool, push its 3VL negation.
    Not,
    /// Pop `n` tri-bools, push their 3VL conjunction.
    And(usize),
    /// Pop `n` tri-bools, push their 3VL disjunction.
    Or(usize),
}

/// A value-stack entry. Column and literal pushes are indices — only
/// arithmetic results are owned, and those are always numeric or NULL, so
/// the stack never heap-allocates.
#[derive(Debug, Clone)]
enum Slot {
    Pos(usize),
    Lit(usize),
    Owned(Value),
}

fn slot<'a, F: Fetch>(s: &'a Slot, f: &'a F, tuple: &'a [u32], lits: &'a [Value]) -> &'a Value {
    match s {
        Slot::Pos(i) => f.at(tuple, *i),
        Slot::Lit(i) => &lits[*i],
        Slot::Owned(v) => v,
    }
}

/// Reusable evaluation stacks, cleared (not freed) per program run.
#[derive(Debug, Default)]
pub struct EvalStacks {
    vals: Vec<Slot>,
    bools: Vec<Option<bool>>,
}

/// A compiled expression: postfix ops plus literal and LIKE-pattern pools.
#[derive(Debug, Clone, PartialEq)]
struct Program {
    ops: Vec<Op>,
    lits: Vec<Value>,
    pats: Vec<String>,
    /// Peephole for the dominant predicate shape `column <op> literal`
    /// (`(fetch position, op, literal index)`): evaluated directly, no
    /// stack traffic.
    fast_cmp: Option<(usize, CmpOp, usize)>,
}

impl Program {
    fn new() -> Self {
        Program {
            ops: Vec::new(),
            lits: Vec::new(),
            pats: Vec::new(),
            fast_cmp: None,
        }
    }

    fn compile_scalar(e: &ScalarExpr, map: &impl Fn(ColRef) -> usize) -> Self {
        let mut p = Program::new();
        p.push_scalar(e, map);
        p
    }

    fn compile_bool(e: &BoolExpr, map: &impl Fn(ColRef) -> usize) -> Self {
        let mut p = Program::new();
        p.push_bool(e, map);
        if let [Op::Col(pos), Op::Lit(lit), Op::Cmp(c)] = p.ops.as_slice() {
            p.fast_cmp = Some((*pos, *c, *lit));
        }
        p
    }

    /// The fetch position when this program is a single bare column.
    fn single_col(&self) -> Option<usize> {
        match self.ops.as_slice() {
            [Op::Col(i)] => Some(*i),
            _ => None,
        }
    }

    fn push_scalar(&mut self, e: &ScalarExpr, map: &impl Fn(ColRef) -> usize) {
        match e {
            ScalarExpr::Column(c) => self.ops.push(Op::Col(map(*c))),
            ScalarExpr::Literal(v) => {
                self.lits.push(v.clone());
                self.ops.push(Op::Lit(self.lits.len() - 1));
            }
            ScalarExpr::Binary { op, left, right } => {
                self.push_scalar(left, map);
                self.push_scalar(right, map);
                self.ops.push(Op::Bin(*op));
            }
        }
    }

    fn push_bool(&mut self, e: &BoolExpr, map: &impl Fn(ColRef) -> usize) {
        match e {
            BoolExpr::Literal(b) => self.ops.push(Op::PushBool(*b)),
            BoolExpr::And(parts) => {
                for p in parts {
                    self.push_bool(p, map);
                }
                self.ops.push(Op::And(parts.len()));
            }
            BoolExpr::Or(parts) => {
                for p in parts {
                    self.push_bool(p, map);
                }
                self.ops.push(Op::Or(parts.len()));
            }
            BoolExpr::Not(p) => {
                self.push_bool(p, map);
                self.ops.push(Op::Not);
            }
            BoolExpr::Compare { op, left, right } => {
                self.push_scalar(left, map);
                self.push_scalar(right, map);
                self.ops.push(Op::Cmp(*op));
            }
            BoolExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                self.push_scalar(expr, map);
                self.pats.push(pattern.clone());
                self.ops.push(Op::Like {
                    pat: self.pats.len() - 1,
                    negated: *negated,
                });
            }
            BoolExpr::IsNull { expr, negated } => {
                self.push_scalar(expr, map);
                self.ops.push(Op::IsNull { negated: *negated });
            }
        }
    }

    fn run<F: Fetch>(&self, f: &F, tuple: &[u32], st: &mut EvalStacks) {
        st.vals.clear();
        st.bools.clear();
        for op in &self.ops {
            match op {
                Op::Col(i) => st.vals.push(Slot::Pos(*i)),
                Op::Lit(i) => st.vals.push(Slot::Lit(*i)),
                Op::Bin(b) => {
                    let r = st.vals.pop().expect("value stack underflow");
                    let l = st.vals.pop().expect("value stack underflow");
                    let v = eval_binop(
                        *b,
                        slot(&l, f, tuple, &self.lits),
                        slot(&r, f, tuple, &self.lits),
                    );
                    st.vals.push(Slot::Owned(v));
                }
                Op::Cmp(c) => {
                    let r = st.vals.pop().expect("value stack underflow");
                    let l = st.vals.pop().expect("value stack underflow");
                    let res = slot(&l, f, tuple, &self.lits)
                        .sql_cmp(slot(&r, f, tuple, &self.lits))
                        .map(|ord| c.evaluate(ord));
                    st.bools.push(res);
                }
                Op::Like { pat, negated } => {
                    let s = st.vals.pop().expect("value stack underflow");
                    let res = match slot(&s, f, tuple, &self.lits) {
                        Value::Null => None,
                        Value::Str(s) => Some(like_match(s, &self.pats[*pat]) != *negated),
                        // LIKE over a non-string is a type error; unknown.
                        _ => None,
                    };
                    st.bools.push(res);
                }
                Op::IsNull { negated } => {
                    let s = st.vals.pop().expect("value stack underflow");
                    st.bools
                        .push(Some(slot(&s, f, tuple, &self.lits).is_null() != *negated));
                }
                Op::PushBool(b) => st.bools.push(Some(*b)),
                Op::Not => {
                    let b = st.bools.pop().expect("bool stack underflow");
                    st.bools.push(b.map(|x| !x));
                }
                Op::And(n) => {
                    let mut saw_false = false;
                    let mut saw_unknown = false;
                    for _ in 0..*n {
                        match st.bools.pop().expect("bool stack underflow") {
                            Some(false) => saw_false = true,
                            None => saw_unknown = true,
                            Some(true) => {}
                        }
                    }
                    st.bools.push(if saw_false {
                        Some(false)
                    } else if saw_unknown {
                        None
                    } else {
                        Some(true)
                    });
                }
                Op::Or(n) => {
                    let mut saw_true = false;
                    let mut saw_unknown = false;
                    for _ in 0..*n {
                        match st.bools.pop().expect("bool stack underflow") {
                            Some(true) => saw_true = true,
                            None => saw_unknown = true,
                            Some(false) => {}
                        }
                    }
                    st.bools.push(if saw_true {
                        Some(true)
                    } else if saw_unknown {
                        None
                    } else {
                        Some(false)
                    });
                }
            }
        }
    }

    fn eval_bool<F: Fetch>(&self, f: &F, tuple: &[u32], st: &mut EvalStacks) -> Option<bool> {
        if let Some((pos, op, lit)) = self.fast_cmp {
            return f
                .at(tuple, pos)
                .sql_cmp(&self.lits[lit])
                .map(|ord| op.evaluate(ord));
        }
        self.run(f, tuple, st);
        st.bools.pop().expect("bool program left empty stack")
    }

    fn eval_scalar_owned<F: Fetch>(&self, f: &F, tuple: &[u32], st: &mut EvalStacks) -> Value {
        self.run(f, tuple, st);
        let s = st.vals.pop().expect("scalar program left empty stack");
        match s {
            Slot::Owned(v) => v,
            other => slot(&other, f, tuple, &self.lits).clone(),
        }
    }

    fn eval_scalar_into_sum<F: Fetch>(
        &self,
        f: &F,
        tuple: &[u32],
        st: &mut EvalStacks,
        acc: &mut SumAcc,
    ) {
        self.run(f, tuple, st);
        let s = st.vals.pop().expect("scalar program left empty stack");
        acc.add(slot(&s, f, tuple, &self.lits));
    }
}

/// One join step: append a table occurrence to the index-tuple prefix.
#[derive(Debug, Clone, PartialEq)]
struct JoinStep {
    table: TableId,
    /// Equijoin pairs `(packed prefix position, column of the new scan)`,
    /// consumed from `ColumnEq` conjuncts exactly as the interpreter does.
    keys: Vec<(usize, usize)>,
    /// Conjuncts that become fully bound once this occurrence is joined,
    /// compiled and applied in conjunct order.
    filters: Vec<Program>,
}

/// Aggregate kinds mirroring [`AggFunc`] without the argument tree.
#[derive(Debug, Clone, Copy)]
enum AggKind {
    CountStar,
    Sum,
    SumZero,
}

/// One compiled aggregate: the kind, its argument program, and — for the
/// dominant bare-column argument shape — the direct fetch position, which
/// skips the program stack entirely.
#[derive(Debug, Clone)]
struct AggProg {
    kind: AggKind,
    arg: Option<Program>,
    arg_col: Option<usize>,
}

/// Compiled output side: projection programs or group-by/aggregate programs.
#[derive(Debug, Clone)]
enum OutputProgram {
    Project(Vec<Program>),
    Aggregate {
        keys: Vec<Program>,
        /// Fast path: every group key is a bare column (its fetch
        /// position). Group lookups then compare in place and clone only
        /// on first insert.
        key_cols: Option<Vec<usize>>,
        aggs: Vec<AggProg>,
    },
}

impl OutputProgram {
    fn compile(output: &OutputList, map: &impl Fn(ColRef) -> usize) -> Self {
        match output {
            OutputList::Spj(items) => OutputProgram::Project(
                items
                    .iter()
                    .map(|ne| Program::compile_scalar(&ne.expr, map))
                    .collect(),
            ),
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => {
                let keys: Vec<Program> = group_by
                    .iter()
                    .map(|ne| Program::compile_scalar(&ne.expr, map))
                    .collect();
                let key_cols = keys.iter().map(Program::single_col).collect();
                OutputProgram::Aggregate {
                    keys,
                    key_cols,
                    aggs: aggregates
                        .iter()
                        .map(|na| {
                            let kind = match na.func {
                                AggFunc::CountStar => AggKind::CountStar,
                                AggFunc::Sum(_) => AggKind::Sum,
                                AggFunc::SumZero(_) => AggKind::SumZero,
                            };
                            let arg = na.func.argument().map(|e| Program::compile_scalar(e, map));
                            let arg_col = arg.as_ref().and_then(Program::single_col);
                            AggProg { kind, arg, arg_col }
                        })
                        .collect(),
                }
            }
        }
    }

    fn arity(&self) -> usize {
        match self {
            OutputProgram::Project(items) => items.len(),
            OutputProgram::Aggregate { keys, aggs, .. } => keys.len() + aggs.len(),
        }
    }

    fn begin(&self, groups: &mut GroupTable) {
        if let OutputProgram::Aggregate { .. } = self {
            groups.clear();
        }
    }

    /// Feed one surviving tuple: push the projected row, or accumulate it
    /// into its group.
    fn feed<F: Fetch>(
        &self,
        f: &F,
        tuple: &[u32],
        st: &mut EvalStacks,
        key_buf: &mut Vec<Value>,
        groups: &mut GroupTable,
        out: &mut RowBag,
    ) {
        match self {
            OutputProgram::Project(items) => {
                for item in items {
                    out.vals.push(item.eval_scalar_owned(f, tuple, st));
                }
                out.count += 1;
            }
            OutputProgram::Aggregate {
                keys,
                key_cols,
                aggs,
            } => {
                let state = match key_cols {
                    Some(cols) => {
                        groups.find_or_insert_by(cols.len(), aggs.len(), |k| f.at(tuple, cols[k]))
                    }
                    None => {
                        key_buf.clear();
                        for k in keys {
                            key_buf.push(k.eval_scalar_owned(f, tuple, st));
                        }
                        groups.find_or_insert_by(key_buf.len(), aggs.len(), |k| &key_buf[k])
                    }
                };
                state.count += 1;
                for (i, agg) in aggs.iter().enumerate() {
                    if let Some(pos) = agg.arg_col {
                        state.sums[i].add(f.at(tuple, pos));
                    } else if let Some(p) = &agg.arg {
                        p.eval_scalar_into_sum(f, tuple, st, &mut state.sums[i]);
                    }
                }
            }
        }
    }

    /// Flush accumulated groups into the output bag (no-op for projections,
    /// whose rows were emitted by [`OutputProgram::feed`]).
    fn finish(&self, groups: &mut GroupTable, out: &mut RowBag) {
        if let OutputProgram::Aggregate { keys, aggs, .. } = self {
            // SQL: a scalar aggregate over empty input yields one row.
            if groups.live == 0 && keys.is_empty() {
                groups.find_or_insert_by(0, aggs.len(), |_| -> &Value { unreachable!() });
            }
            for g in 0..groups.live {
                out.vals.extend_from_slice(&groups.keys[g]);
                let state = &groups.states[g];
                for (i, agg) in aggs.iter().enumerate() {
                    out.vals.push(match agg.kind {
                        AggKind::CountStar => Value::Int(state.count),
                        AggKind::Sum => state.sums[i].finish(),
                        AggKind::SumZero => state.sums[i].finish_zero(),
                    });
                }
                out.count += 1;
            }
        }
    }
}

/// Per-group accumulator state, mirroring [`crate::agg::GroupAcc`].
#[derive(Debug, Default, Clone)]
struct GroupState {
    count: i64,
    sums: Vec<SumAcc>,
}

/// A reusable linear-scan group table. Groups per database are few (bounded
/// by the handful of enumerated rows), so a scan beats rebuilding a hash
/// map; slots beyond `live` keep their capacity for the next database.
#[derive(Debug, Default)]
struct GroupTable {
    keys: Vec<Vec<Value>>,
    states: Vec<GroupState>,
    live: usize,
}

impl GroupTable {
    fn clear(&mut self) {
        self.live = 0;
    }

    /// Find the group whose key matches `get(0..n_keys)`, inserting a fresh
    /// one (cloning the key values — the only clone on the aggregate path)
    /// when absent.
    fn find_or_insert_by<'v>(
        &mut self,
        n_keys: usize,
        n_aggs: usize,
        get: impl Fn(usize) -> &'v Value,
    ) -> &mut GroupState {
        'groups: for i in 0..self.live {
            for k in 0..n_keys {
                if self.keys[i][k] != *get(k) {
                    continue 'groups;
                }
            }
            return &mut self.states[i];
        }
        if self.live == self.keys.len() {
            self.keys
                .push((0..n_keys).map(|k| get(k).clone()).collect());
            self.states.push(GroupState {
                count: 0,
                sums: vec![SumAcc::default(); n_aggs],
            });
        } else {
            let kv = &mut self.keys[self.live];
            kv.clear();
            kv.extend((0..n_keys).map(|k| get(k).clone()));
            let s = &mut self.states[self.live];
            s.count = 0;
            s.sums.clear();
            s.sums.resize(n_aggs, SumAcc::default());
        }
        self.live += 1;
        &mut self.states[self.live - 1]
    }
}

/// A flat, reusable bag of fixed-arity rows.
#[derive(Debug, Default)]
pub struct RowBag {
    vals: Vec<Value>,
    arity: usize,
    count: usize,
}

impl RowBag {
    /// An empty bag.
    pub fn new() -> Self {
        RowBag::default()
    }

    fn reset(&mut self, arity: usize) {
        self.vals.clear();
        self.arity = arity;
        self.count = 0;
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True iff the bag holds no rows.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Materialize as owned rows (cold path: witnesses and tests).
    pub fn to_rows(&self) -> Vec<Row> {
        if self.arity == 0 {
            return vec![Vec::new(); self.count];
        }
        self.vals
            .chunks_exact(self.arity)
            .map(|c| c.to_vec())
            .collect()
    }
}

/// Multiset equality over two flat bags without allocating (the `matched`
/// bitmap is caller-provided scratch). Quadratic, but prove-time bags hold
/// at most a few dozen rows.
pub fn rowbag_eq(a: &RowBag, b: &RowBag, matched: &mut Vec<bool>) -> bool {
    if a.count != b.count {
        return false;
    }
    if a.count == 0 {
        return true;
    }
    if a.arity != b.arity {
        return false;
    }
    let w = a.arity;
    matched.clear();
    matched.resize(b.count, false);
    'outer: for i in 0..a.count {
        let ra = &a.vals[i * w..(i + 1) * w];
        for (j, m) in matched.iter_mut().enumerate() {
            if !*m && &b.vals[j * w..(j + 1) * w] == ra {
                *m = true;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Reusable per-worker scratch: index-tuple ping-pong buffers, evaluation
/// stacks, the group table, and the bag-equality bitmap. One of these per
/// prove worker amortizes every allocation across all enumerated databases.
#[derive(Debug, Default)]
pub struct ExecScratch {
    cur: Vec<u32>,
    nxt: Vec<u32>,
    st: EvalStacks,
    key_buf: Vec<Value>,
    groups: GroupTable,
    /// Scratch bitmap for [`rowbag_eq`].
    pub matched: Vec<bool>,
}

impl ExecScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        ExecScratch::default()
    }
}

fn conjunct_bound(conj: &Conjunct, bound: u32) -> bool {
    conj.columns().iter().all(|c| c.occ.0 < bound)
}

/// Apply compiled filters in place over the tuple buffer, compacting
/// surviving tuples to the front. Returns the new tuple count.
fn filter_tuples<F: Fetch>(
    filters: &[Program],
    tuples: &mut Vec<u32>,
    stride: usize,
    mut n_rows: usize,
    f: &F,
    st: &mut EvalStacks,
) -> usize {
    for prog in filters {
        let mut w = 0;
        for r in 0..n_rows {
            let keep = prog.eval_bool(f, &tuples[r * stride..(r + 1) * stride], st) == Some(true);
            if keep {
                if w != r {
                    tuples.copy_within(r * stride..(r + 1) * stride, w * stride);
                }
                w += 1;
            }
        }
        tuples.truncate(w * stride);
        n_rows = w;
    }
    n_rows
}

/// Run the join schedule, leaving the surviving index tuples (stride =
/// number of steps) in `cur`. Returns the tuple count.
fn join_steps(
    steps: &[JoinStep],
    f: &PlanFetch<'_>,
    cur: &mut Vec<u32>,
    nxt: &mut Vec<u32>,
    st: &mut EvalStacks,
) -> usize {
    cur.clear();
    let mut n_rows = 1usize; // one empty prefix tuple
    for (occ, step) in steps.iter().enumerate() {
        let scan = f.occ_rows[occ];
        nxt.clear();
        for r in 0..n_rows {
            let prefix = &cur[r * occ..r * occ + occ];
            'scan: for (ri, trow) in scan.iter().enumerate() {
                for &(pp, rc) in &step.keys {
                    let a = f.at(prefix, pp);
                    let b = &trow[rc];
                    // SQL equality: NULL keys never join.
                    if a.is_null() || b.is_null() || a != b {
                        continue 'scan;
                    }
                }
                nxt.extend_from_slice(prefix);
                nxt.push(ri as u32);
            }
        }
        std::mem::swap(cur, nxt);
        n_rows = cur.len() / (occ + 1);
        if !step.filters.is_empty() {
            n_rows = filter_tuples(&step.filters, cur, occ + 1, n_rows, f, st);
        }
    }
    n_rows
}

/// An [`SpjgExpr`] compiled once: the join schedule plus predicate and
/// output programs, all addressed by packed `(occurrence, column)` fetch
/// positions.
#[derive(Debug, Clone)]
pub struct PlanProgram {
    steps: Vec<JoinStep>,
    output: OutputProgram,
    /// Packed per-output column positions when the output is a pure column
    /// projection — the hook [`SubstitutePipeline`] uses to fuse a view
    /// into the substitute without materializing its rows.
    out_cols: Option<Vec<usize>>,
}

impl PlanProgram {
    /// Compile an SPJG block. The conjunct schedule (which `ColumnEq`s
    /// become join keys at which step, and when each remaining conjunct is
    /// applied) replicates [`crate::spjg::execute_spj_part`] exactly.
    pub fn compile(catalog: &Catalog, expr: &SpjgExpr) -> Self {
        assert!(
            expr.tables.len() <= MAX_OCCS,
            "PlanProgram supports at most {MAX_OCCS} table occurrences"
        );
        let map = |c: ColRef| ((c.occ.0 as usize) << COL_BITS) | c.col.0 as usize;

        let mut applied = vec![false; expr.conjuncts.len()];
        let mut steps = Vec::with_capacity(expr.tables.len());
        for (occ_idx, &table) in expr.tables.iter().enumerate() {
            let occ = occ_idx as u32;
            let mut keys = Vec::new();
            for (i, conj) in expr.conjuncts.iter().enumerate() {
                if applied[i] {
                    continue;
                }
                if let Conjunct::ColumnEq(a, b) = conj {
                    if a.occ.0 < occ && b.occ.0 == occ {
                        keys.push((map(*a), b.col.0 as usize));
                        applied[i] = true;
                    } else if b.occ.0 < occ && a.occ.0 == occ {
                        keys.push((map(*b), a.col.0 as usize));
                        applied[i] = true;
                    }
                }
            }
            let mut filters = Vec::new();
            for (i, conj) in expr.conjuncts.iter().enumerate() {
                if applied[i] || !conjunct_bound(conj, occ + 1) {
                    continue;
                }
                applied[i] = true;
                filters.push(Program::compile_bool(&conj.to_bool(), &map));
            }
            steps.push(JoinStep {
                table,
                keys,
                filters,
            });
        }
        debug_assert!(applied.iter().all(|a| *a), "unapplied conjunct");
        let output = OutputProgram::compile(&expr.output, &map);
        let out_cols = match &output {
            OutputProgram::Project(items) => items.iter().map(Program::single_col).collect(),
            OutputProgram::Aggregate { .. } => None,
        };
        let _ = catalog; // schema is implied by the packed addressing
        PlanProgram {
            steps,
            output,
            out_cols,
        }
    }

    /// Fill the per-occurrence scan table for `db`.
    fn scans<'a>(&self, db: &'a Database, buf: &mut [&'a [Row]; MAX_OCCS]) {
        for (i, s) in self.steps.iter().enumerate() {
            buf[i] = db.rows(s.table);
        }
    }

    /// Evaluate against one database, writing the output bag into `out`.
    pub fn execute(&self, db: &Database, scratch: &mut ExecScratch, out: &mut RowBag) {
        let ExecScratch {
            cur,
            nxt,
            st,
            key_buf,
            groups,
            ..
        } = scratch;
        let mut occ_rows: [&[Row]; MAX_OCCS] = [&[]; MAX_OCCS];
        self.scans(db, &mut occ_rows);
        let f = PlanFetch {
            occ_rows: &occ_rows[..self.steps.len()],
        };
        let n_rows = join_steps(&self.steps, &f, cur, nxt, st);
        let stride = self.steps.len();
        out.reset(self.output.arity());
        self.output.begin(groups);
        for r in 0..n_rows {
            self.output.feed(
                &f,
                &cur[r * stride..(r + 1) * stride],
                st,
                key_buf,
                groups,
                out,
            );
        }
        self.output.finish(groups, out);
    }
}

/// One compiled backjoin: extend each tuple with the base-table row its key
/// identifies.
#[derive(Debug, Clone)]
struct BackJoinStep {
    table: TableId,
    /// `(position in the substitute row so far, column of the base table)`.
    key: Vec<(usize, usize)>,
    width: usize,
}

/// A [`Substitute`] compiled once: backjoin schedule, the ANDed
/// compensating predicate, and the output programs, addressed by position
/// in the substitute column space (view outputs, then backjoin columns).
#[derive(Debug, Clone)]
pub struct SubstituteProgram {
    backjoins: Vec<BackJoinStep>,
    pred: Program,
    output: OutputProgram,
}

impl SubstituteProgram {
    /// Compile a substitute. Column references resolve by position in the
    /// substitute column space, so the view's arity is implicit.
    pub fn compile(catalog: &Catalog, sub: &Substitute) -> Self {
        assert!(
            sub.backjoins.len() < MAX_OCCS,
            "SubstituteProgram supports at most {} backjoins",
            MAX_OCCS - 1
        );
        let map = |c: ColRef| c.col.0 as usize;
        SubstituteProgram {
            backjoins: sub
                .backjoins
                .iter()
                .map(|bj| BackJoinStep {
                    table: bj.table,
                    key: bj.key.iter().map(|(p, c)| (*p, c.0 as usize)).collect(),
                    width: catalog.table(bj.table).columns.len(),
                })
                .collect(),
            pred: Program::compile_bool(&BoolExpr::and(sub.predicates.clone()), &map),
            output: OutputProgram::compile(&sub.output, &map),
        }
    }

    /// Fill the backjoin scan/offset tables; segment offsets start at the
    /// view arity (backjoin key positions may reach into earlier segments).
    fn backjoin_tables<'a>(
        &self,
        db: &'a Database,
        view_arity: usize,
        rows: &mut [&'a [Row]; MAX_OCCS],
        offs: &mut [usize; MAX_OCCS],
    ) {
        let mut off = view_arity;
        for (i, bj) in self.backjoins.iter().enumerate() {
            rows[i] = db.rows(bj.table);
            offs[i] = off;
            off += bj.width;
        }
    }

    /// Run the backjoins, predicate, and output over tuples whose view
    /// segment is already seeded (one tuple at a time — backjoins never fan
    /// out, they extend a tuple or drop it).
    ///
    /// Backjoin semantics replicate [`crate::substitute::execute_substitute_with`]:
    /// the interpreter's key index is built by inserting base rows in order
    /// (so on duplicate keys the *last* row wins — hence the reverse scan)
    /// and keys compare with `Value::eq`, under which NULL equals NULL.
    #[allow(clippy::too_many_arguments)]
    fn feed_tuple<F: Fetch>(
        &self,
        f: &F,
        tup: &mut [u32],
        view_slots: usize,
        bj_rows: &[&[Row]; MAX_OCCS],
        st: &mut EvalStacks,
        key_buf: &mut Vec<Value>,
        groups: &mut GroupTable,
        out: &mut RowBag,
    ) {
        for (i, bj) in self.backjoins.iter().enumerate() {
            let scan = bj_rows[i];
            let hit = scan
                .iter()
                .enumerate()
                .rev()
                .find(|(_, trow)| bj.key.iter().all(|&(p, c)| *f.at(tup, p) == trow[c]));
            match hit {
                Some((ri, _)) => tup[view_slots + i] = ri as u32,
                None => return,
            }
        }
        if self.pred.eval_bool(f, tup, st) != Some(true) {
            return;
        }
        self.output.feed(f, tup, st, key_buf, groups, out);
    }

    /// Evaluate against materialized view rows (and base tables for
    /// backjoins), writing the output bag into `out`.
    pub fn execute(
        &self,
        db: &Database,
        view_rows: &RowBag,
        scratch: &mut ExecScratch,
        out: &mut RowBag,
    ) {
        let ExecScratch {
            cur,
            st,
            key_buf,
            groups,
            ..
        } = scratch;
        let mut bj_rows: [&[Row]; MAX_OCCS] = [&[]; MAX_OCCS];
        let mut bj_offs: [usize; MAX_OCCS] = [0; MAX_OCCS];
        self.backjoin_tables(db, view_rows.arity, &mut bj_rows, &mut bj_offs);
        let nb = self.backjoins.len();
        let f = SubFetch {
            view: view_rows,
            bj_offs: &bj_offs[..nb],
            bj_rows: &bj_rows[..nb],
        };
        out.reset(self.output.arity());
        self.output.begin(groups);
        cur.clear();
        cur.resize(1 + nb, 0);
        for r in 0..view_rows.count {
            cur[0] = r as u32;
            self.feed_tuple(&f, cur, 1, &bj_rows, st, key_buf, groups, out);
        }
        self.output.finish(groups, out);
    }
}

/// A compiled `(view, substitute)` pair. When the view's output is a bare
/// column projection (`out_cols`), the substitute runs *fused* over the
/// view's join tuples — view rows are never materialized, and every column
/// reference resolves through the projection straight to base-table
/// storage. Otherwise (aggregate or computed-output views) the view is
/// materialized into the caller's bag and the substitute runs over it.
#[derive(Debug, Clone)]
pub struct SubstitutePipeline {
    view: PlanProgram,
    sub: SubstituteProgram,
}

impl SubstitutePipeline {
    /// Compile the pair.
    pub fn compile(catalog: &Catalog, view_expr: &SpjgExpr, sub: &Substitute) -> Self {
        SubstitutePipeline {
            view: PlanProgram::compile(catalog, view_expr),
            sub: SubstituteProgram::compile(catalog, sub),
        }
    }

    /// Evaluate the substitute against one database. `view_bag` is scratch
    /// for the unfused fallback (left untouched on the fused path).
    pub fn execute(
        &self,
        db: &Database,
        scratch: &mut ExecScratch,
        view_bag: &mut RowBag,
        out: &mut RowBag,
    ) {
        let Some(view_cols) = &self.view.out_cols else {
            self.view.execute(db, scratch, view_bag);
            self.sub.execute(db, view_bag, scratch, out);
            return;
        };
        let ExecScratch {
            cur,
            nxt,
            st,
            key_buf,
            groups,
            ..
        } = scratch;
        let n_vocc = self.view.steps.len();
        let mut occ_rows: [&[Row]; MAX_OCCS] = [&[]; MAX_OCCS];
        self.view.scans(db, &mut occ_rows);
        let pf = PlanFetch {
            occ_rows: &occ_rows[..n_vocc],
        };
        let n_view = join_steps(&self.view.steps, &pf, cur, nxt, st);
        let mut bj_rows: [&[Row]; MAX_OCCS] = [&[]; MAX_OCCS];
        let mut bj_offs: [usize; MAX_OCCS] = [0; MAX_OCCS];
        self.sub
            .backjoin_tables(db, view_cols.len(), &mut bj_rows, &mut bj_offs);
        let nb = self.sub.backjoins.len();
        let f = FusedFetch {
            view_cols,
            occ_rows: &occ_rows[..n_vocc],
            n_view_occs: n_vocc,
            bj_offs: &bj_offs[..nb],
            bj_rows: &bj_rows[..nb],
        };
        out.reset(self.sub.output.arity());
        self.sub.output.begin(groups);
        let mut tup_buf = [0u32; 2 * MAX_OCCS];
        let tup = &mut tup_buf[..n_vocc + nb];
        for r in 0..n_view {
            tup[..n_vocc].copy_from_slice(&cur[r * n_vocc..(r + 1) * n_vocc]);
            self.sub
                .feed_tuple(&f, tup, n_vocc, &bj_rows, st, key_buf, groups, out);
        }
        self.sub.output.finish(groups, out);
    }

    /// True when the fused path applies *and* the view's join schedule is
    /// step-identical to `query`'s — same tables, join keys, and filter
    /// programs. The two sides then enumerate exactly the same index-tuple
    /// stream, so [`Self::execute_shared`] can run the join once and feed
    /// both outputs from it.
    pub fn shares_join(&self, query: &PlanProgram) -> bool {
        self.view.out_cols.is_some() && self.view.steps == query.steps
    }

    /// A query program suitable for [`Self::execute_shared`]: `query`
    /// itself when it already [`Self::shares_join`], otherwise — when the
    /// two SPJ blocks join the same tables under the same conjunct set,
    /// merely numbering the occurrences differently — the query's output
    /// recompiled against the view's occurrence numbering (the join
    /// schedule is then the view's own, so `shares_join` holds for the
    /// result by construction). `None` when the joins genuinely differ or
    /// the pipeline is unfused; callers then run the two sides separately.
    pub fn shared_query(
        &self,
        catalog: &Catalog,
        query: &PlanProgram,
        query_expr: &SpjgExpr,
        view_expr: &SpjgExpr,
    ) -> Option<PlanProgram> {
        self.view.out_cols.as_ref()?;
        if self.view.steps == query.steps {
            return Some(query.clone());
        }
        let perm = occ_bijection(query_expr, view_expr)?;
        let remapped = SpjgExpr {
            tables: view_expr.tables.clone(),
            conjuncts: view_expr.conjuncts.clone(),
            output: remap_output(&query_expr.output, &perm),
        };
        Some(PlanProgram::compile(catalog, &remapped))
    }

    /// Evaluate the query *and* the substitute over one shared join pass.
    /// Requires [`Self::shares_join`]`(query)`; each output bag is exactly
    /// what the two separate `execute` calls would produce — the common
    /// case on the prove hot path, where the substitute's view is the
    /// query's own SPJ block, halves its join work.
    pub fn execute_shared(
        &self,
        query: &PlanProgram,
        db: &Database,
        scratch: &mut ExecScratch,
        query_out: &mut RowBag,
        out: &mut RowBag,
    ) {
        debug_assert!(self.shares_join(query));
        let view_cols = self.view.out_cols.as_ref().expect("shares_join holds");
        let ExecScratch {
            cur,
            nxt,
            st,
            key_buf,
            groups,
            ..
        } = scratch;
        let n_vocc = self.view.steps.len();
        let mut occ_rows: [&[Row]; MAX_OCCS] = [&[]; MAX_OCCS];
        self.view.scans(db, &mut occ_rows);
        let pf = PlanFetch {
            occ_rows: &occ_rows[..n_vocc],
        };
        let n_view = join_steps(&self.view.steps, &pf, cur, nxt, st);
        query_out.reset(query.output.arity());
        query.output.begin(groups);
        for r in 0..n_view {
            query.output.feed(
                &pf,
                &cur[r * n_vocc..(r + 1) * n_vocc],
                st,
                key_buf,
                groups,
                query_out,
            );
        }
        query.output.finish(groups, query_out);
        let mut bj_rows: [&[Row]; MAX_OCCS] = [&[]; MAX_OCCS];
        let mut bj_offs: [usize; MAX_OCCS] = [0; MAX_OCCS];
        self.sub
            .backjoin_tables(db, view_cols.len(), &mut bj_rows, &mut bj_offs);
        let nb = self.sub.backjoins.len();
        let f = FusedFetch {
            view_cols,
            occ_rows: &occ_rows[..n_vocc],
            n_view_occs: n_vocc,
            bj_offs: &bj_offs[..nb],
            bj_rows: &bj_rows[..nb],
        };
        out.reset(self.sub.output.arity());
        self.sub.output.begin(groups);
        let mut tup_buf = [0u32; 2 * MAX_OCCS];
        let tup = &mut tup_buf[..n_vocc + nb];
        for r in 0..n_view {
            tup[..n_vocc].copy_from_slice(&cur[r * n_vocc..(r + 1) * n_vocc]);
            self.sub
                .feed_tuple(&f, tup, n_vocc, &bj_rows, st, key_buf, groups, out);
        }
        self.sub.output.finish(groups, out);
    }
}

/// Occurrence bijection `perm` (query occurrence `i` plays view occurrence
/// `perm[i]`) under which the two SPJ blocks join the same tables with the
/// same conjunct set. Join results are schedule-independent — the
/// assignments of rows to occurrences satisfying all conjuncts — so equal
/// signatures mean one join pass serves both sides (tuple *order* may
/// differ from the query's own schedule, which multiset bag comparison
/// absorbs). Self-joins make the bijection ambiguous; bail to `None`.
fn occ_bijection(query: &SpjgExpr, view: &SpjgExpr) -> Option<Vec<usize>> {
    if query.tables.len() != view.tables.len() {
        return None;
    }
    let distinct = |ts: &[TableId]| {
        let mut s = ts.to_vec();
        s.sort();
        s.windows(2).all(|w| w[0] != w[1])
    };
    if !distinct(&query.tables) || !distinct(&view.tables) {
        return None;
    }
    let perm: Vec<usize> = query
        .tables
        .iter()
        .map(|t| view.tables.iter().position(|v| v == t))
        .collect::<Option<_>>()?;
    if same_conjuncts(&query.conjuncts, &view.conjuncts, &perm) {
        Some(perm)
    } else {
        None
    }
}

/// Remap a conjunct's occurrences and normalize `a = b` symmetry.
fn normalize_conjunct(c: &Conjunct, m: &mut impl FnMut(ColRef) -> ColRef) -> Conjunct {
    match c {
        Conjunct::ColumnEq(a, b) => {
            let (x, y) = (m(*a), m(*b));
            if y < x {
                Conjunct::ColumnEq(y, x)
            } else {
                Conjunct::ColumnEq(x, y)
            }
        }
        Conjunct::Range { col, op, value } => Conjunct::Range {
            col: m(*col),
            op: *op,
            value: value.clone(),
        },
        Conjunct::Residual(b) => Conjunct::Residual(b.map_columns(m)),
    }
}

/// Conjunct multisets equal after remapping query occurrences via `perm`.
/// Residuals compare syntactically — unequal spellings conservatively fail.
fn same_conjuncts(query: &[Conjunct], view: &[Conjunct], perm: &[usize]) -> bool {
    if query.len() != view.len() {
        return false;
    }
    let qn: Vec<Conjunct> = query
        .iter()
        .map(|c| {
            normalize_conjunct(c, &mut |r: ColRef| ColRef {
                occ: OccId(perm[r.occ.0 as usize] as u32),
                col: r.col,
            })
        })
        .collect();
    let vn: Vec<Conjunct> = view
        .iter()
        .map(|c| normalize_conjunct(c, &mut |r| r))
        .collect();
    let mut used = vec![false; vn.len()];
    qn.iter().all(
        |c| match vn.iter().enumerate().position(|(i, v)| !used[i] && v == c) {
            Some(i) => {
                used[i] = true;
                true
            }
            None => false,
        },
    )
}

/// Remap an output list's occurrences via `perm`.
fn remap_output(out: &OutputList, perm: &[usize]) -> OutputList {
    fn remap(perm: &[usize]) -> impl FnMut(ColRef) -> ColRef + '_ {
        |r: ColRef| ColRef {
            occ: OccId(perm[r.occ.0 as usize] as u32),
            col: r.col,
        }
    }
    let ne = |n: &NamedExpr| NamedExpr {
        expr: n.expr.map_columns(&mut remap(perm)),
        name: n.name.clone(),
    };
    match out {
        OutputList::Spj(items) => OutputList::Spj(items.iter().map(ne).collect()),
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => OutputList::Aggregate {
            group_by: group_by.iter().map(ne).collect(),
            aggregates: aggregates
                .iter()
                .map(|a| NamedAgg {
                    func: match &a.func {
                        AggFunc::CountStar => AggFunc::CountStar,
                        AggFunc::Sum(e) => AggFunc::Sum(e.map_columns(&mut remap(perm))),
                        AggFunc::SumZero(e) => AggFunc::SumZero(e.map_columns(&mut remap(perm))),
                    },
                    name: a.name.clone(),
                })
                .collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::bag_eq;
    use crate::spjg::execute_spjg;
    use crate::substitute::{execute_substitute_with, materialize_view};
    use mv_data::{generate_tpch, TpchScale};
    use mv_expr::ScalarExpr as S;
    use mv_plan::{NamedAgg, NamedExpr, ViewDef, ViewId};

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    fn run_plan(db: &Database, e: &SpjgExpr) -> Vec<Row> {
        let prog = PlanProgram::compile(&db.catalog, e);
        let mut scratch = ExecScratch::new();
        let mut out = RowBag::new();
        prog.execute(db, &mut scratch, &mut out);
        out.to_rows()
    }

    #[test]
    fn compiled_matches_interpreter_on_join_filter_project() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 5);
        let pred = BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::col_eq(cr(1, 1), cr(2, 0)),
            BoolExpr::cmp(S::col(cr(2, 0)), CmpOp::Le, S::lit(10i64)),
        ]);
        let e = SpjgExpr::spj(
            vec![t.lineitem, t.orders, t.customer],
            pred,
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
                NamedExpr::new(
                    S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5))),
                    "product",
                ),
            ],
        );
        let want = execute_spjg(&db, &e);
        let got = run_plan(&db, &e);
        assert!(!want.is_empty());
        assert!(bag_eq(&got, &want));
    }

    #[test]
    fn compiled_matches_interpreter_on_aggregation() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 5);
        let e = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![
                NamedAgg::new(AggFunc::CountStar, "cnt"),
                NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total"),
            ],
        );
        let want = execute_spjg(&db, &e);
        let got = run_plan(&db, &e);
        assert!(bag_eq(&got, &want));
    }

    #[test]
    fn compiled_scalar_aggregate_over_empty_input() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 5);
        let e = SpjgExpr::aggregate(
            vec![t.part],
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(0i64)),
            vec![],
            vec![
                NamedAgg::new(AggFunc::CountStar, "cnt"),
                NamedAgg::new(AggFunc::Sum(S::col(cr(0, 5))), "s"),
                NamedAgg::new(AggFunc::SumZero(S::col(cr(0, 5))), "z"),
            ],
        );
        let got = run_plan(&db, &e);
        assert_eq!(got, vec![vec![Value::Int(0), Value::Null, Value::Int(0)]]);
    }

    #[test]
    fn compiled_substitute_matches_interpreter() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 17);
        let view = ViewDef::new(
            "v",
            SpjgExpr::spj(
                vec![t.part],
                BoolExpr::Literal(true),
                vec![
                    NamedExpr::new(S::col(cr(0, 0)), "p_partkey"),
                    NamedExpr::new(S::col(cr(0, 5)), "p_size"),
                ],
            ),
        );
        let view_rows = materialize_view(&db, &view);
        let sub = Substitute {
            view: ViewId(0),
            backjoins: vec![],
            predicates: vec![BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Lt, S::lit(20i64))],
            output: OutputList::Spj(vec![NamedExpr::new(S::col(cr(0, 0)), "p_partkey")]),
            freshness: mv_plan::Freshness::Fresh,
        };
        let want = execute_substitute_with(&db, &view_rows, &sub);

        let vprog = PlanProgram::compile(&db.catalog, &view.expr);
        let sprog = SubstituteProgram::compile(&db.catalog, &sub);
        let mut scratch = ExecScratch::new();
        let mut vbag = RowBag::new();
        let mut obag = RowBag::new();
        vprog.execute(&db, &mut scratch, &mut vbag);
        sprog.execute(&db, &vbag, &mut scratch, &mut obag);
        assert!(bag_eq(&obag.to_rows(), &want));
        assert!(!want.is_empty());

        // The fused pipeline (column-projection view) agrees too.
        let pipe = SubstitutePipeline::compile(&db.catalog, &view.expr, &sub);
        let mut vscratch = RowBag::new();
        let mut fused = RowBag::new();
        pipe.execute(&db, &mut scratch, &mut vscratch, &mut fused);
        assert!(bag_eq(&fused.to_rows(), &want));
        // Fused path never touched the view scratch bag.
        assert!(vscratch.is_empty());
    }

    #[test]
    fn shared_query_remaps_permuted_occurrences() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 29);
        // Query and view join the same tables with occurrences numbered in
        // opposite orders.
        let query = SpjgExpr::aggregate(
            vec![t.orders, t.lineitem],
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![
                NamedAgg::new(AggFunc::CountStar, "cnt"),
                NamedAgg::new(AggFunc::Sum(S::col(cr(1, 4))), "qty"),
            ],
        );
        let view = SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            BoolExpr::col_eq(cr(1, 0), cr(0, 0)),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
                NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
                NamedExpr::new(S::col(cr(1, 1)), "o_custkey"),
            ],
        );
        let sub = Substitute {
            view: ViewId(0),
            backjoins: vec![],
            predicates: vec![],
            output: OutputList::Aggregate {
                group_by: vec![NamedExpr::new(S::col(cr(0, 2)), "o_custkey")],
                aggregates: vec![
                    NamedAgg::new(AggFunc::CountStar, "cnt"),
                    NamedAgg::new(AggFunc::Sum(S::col(cr(0, 1))), "qty"),
                ],
            },
            freshness: mv_plan::Freshness::Fresh,
        };
        let qprog = PlanProgram::compile(&db.catalog, &query);
        let pipe = SubstitutePipeline::compile(&db.catalog, &view, &sub);
        // Step-identical fails (different occurrence numbering) …
        assert!(!pipe.shares_join(&qprog));
        // … but the bijection remap recovers a shared-join query program.
        let shared = pipe
            .shared_query(&db.catalog, &qprog, &query, &view)
            .expect("same join up to occurrence order");
        assert!(pipe.shares_join(&shared));

        let mut scratch = ExecScratch::new();
        let (mut qbag, mut vbag, mut sbag) = (RowBag::new(), RowBag::new(), RowBag::new());
        qprog.execute(&db, &mut scratch, &mut qbag);
        pipe.execute(&db, &mut scratch, &mut vbag, &mut sbag);
        let (mut q2, mut s2) = (RowBag::new(), RowBag::new());
        pipe.execute_shared(&shared, &db, &mut scratch, &mut q2, &mut s2);
        assert!(!qbag.is_empty());
        assert!(bag_eq(&q2.to_rows(), &qbag.to_rows()));
        assert!(bag_eq(&s2.to_rows(), &sbag.to_rows()));
    }

    #[test]
    fn rowbag_eq_detects_multiplicity() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 3);
        let e = SpjgExpr::spj(
            vec![t.region],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let prog = PlanProgram::compile(&db.catalog, &e);
        let mut scratch = ExecScratch::new();
        let mut a = RowBag::new();
        let mut b = RowBag::new();
        prog.execute(&db, &mut scratch, &mut a);
        prog.execute(&db, &mut scratch, &mut b);
        let mut matched = Vec::new();
        assert!(rowbag_eq(&a, &b, &mut matched));
        // Perturb one value.
        b.vals[0] = Value::Int(-999);
        assert!(!rowbag_eq(&a, &b, &mut matched));
    }
}
