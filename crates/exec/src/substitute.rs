//! View materialization and substitute execution.

use crate::agg::GroupAcc;
use crate::spjg::execute_spjg;
use mv_catalog::Value;
use mv_data::{Database, Row};
use mv_expr::{BoolExpr, ColRef};
use mv_plan::{OutputList, Substitute, ViewDef};
use std::collections::HashMap;

/// Materialize a view: execute its defining expression against base data.
/// (In SQL Server terms: build the unique clustered index contents.)
pub fn materialize_view(db: &Database, view: &ViewDef) -> Vec<Row> {
    execute_spjg(db, &view.expr)
}

/// Execute a substitute against the materialized rows of its view: filter
/// by the compensating predicates, then project or re-aggregate.
///
/// Column references inside the substitute follow the `Substitute`
/// convention: `occ = 0`, `col = view output position`. Panics if the
/// substitute carries backjoins — use [`execute_substitute_with`] for
/// those (they need base-table access).
pub fn execute_substitute(view_rows: &[Row], sub: &Substitute) -> Vec<Row> {
    assert!(
        sub.backjoins.is_empty(),
        "substitute has backjoins; use execute_substitute_with"
    );
    finish_substitute(view_rows.to_vec(), sub)
}

/// Execute a substitute that may carry base-table backjoins (the section 7
/// extension): each backjoin extends every row with the columns of the
/// base row its unique key identifies, then the usual filter/project/
/// re-aggregate pipeline runs over the extended rows.
pub fn execute_substitute_with(db: &Database, view_rows: &[Row], sub: &Substitute) -> Vec<Row> {
    let mut rows: Vec<Row> = view_rows.to_vec();
    for bj in &sub.backjoins {
        let mut index: HashMap<Vec<&Value>, &Row> = HashMap::new();
        for trow in db.rows(bj.table) {
            let key: Vec<&Value> = bj.key.iter().map(|(_, c)| &trow[c.0 as usize]).collect();
            index.insert(key, trow);
        }
        rows = rows
            .into_iter()
            .filter_map(|mut r| {
                let key: Vec<&Value> = bj.key.iter().map(|(p, _)| &r[*p]).collect();
                let trow = index.get(&key).copied()?.clone();
                r.extend(trow);
                Some(r)
            })
            .collect();
    }
    finish_substitute(rows, sub)
}

/// The shared tail: compensating predicates, then projection or grouping.
fn finish_substitute(rows: Vec<Row>, sub: &Substitute) -> Vec<Row> {
    let accessor = |row: &Row| {
        let row = row.clone();
        move |c: ColRef| row[c.col.0 as usize].clone()
    };
    let pred = BoolExpr::and(sub.predicates.clone());
    let filtered: Vec<&Row> = rows
        .iter()
        .filter(|row| {
            let get = accessor(row);
            pred.eval(&get) == Some(true)
        })
        .collect();
    match &sub.output {
        OutputList::Spj(items) => filtered
            .iter()
            .map(|row| {
                let get = accessor(row);
                items.iter().map(|ne| ne.expr.eval(&get)).collect()
            })
            .collect(),
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            let aggs: Vec<_> = aggregates.iter().map(|a| a.func.clone()).collect();
            let mut groups: HashMap<Vec<Value>, GroupAcc> = HashMap::new();
            for row in &filtered {
                let get = accessor(row);
                let key: Vec<Value> = group_by.iter().map(|g| g.expr.eval(&get)).collect();
                groups
                    .entry(key)
                    .or_insert_with(|| GroupAcc::new(aggs.len()))
                    .add(&aggs, &get);
            }
            if groups.is_empty() && group_by.is_empty() {
                groups.insert(Vec::new(), GroupAcc::new(aggs.len()));
            }
            groups
                .into_iter()
                .map(|(mut key, acc)| {
                    key.extend(acc.finish(&aggs));
                    key
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::bag_eq;
    use mv_data::{generate_tpch, TpchScale};
    use mv_expr::{CmpOp, ScalarExpr as S};
    use mv_plan::{NamedExpr, SpjgExpr, ViewId};

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    #[test]
    fn substitute_filters_and_projects() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 17);
        // View: all parts with key and size.
        let view = ViewDef::new(
            "v",
            SpjgExpr::spj(
                vec![t.part],
                BoolExpr::Literal(true),
                vec![
                    NamedExpr::new(S::col(cr(0, 0)), "p_partkey"),
                    NamedExpr::new(S::col(cr(0, 5)), "p_size"),
                ],
            ),
        );
        let rows = materialize_view(&db, &view);
        assert_eq!(rows.len(), db.row_count(t.part));
        // Substitute: keep p_size < 20, output p_partkey.
        let sub = Substitute {
            view: ViewId(0),
            backjoins: vec![],
            predicates: vec![BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Lt, S::lit(20i64))],
            output: OutputList::Spj(vec![NamedExpr::new(S::col(cr(0, 0)), "p_partkey")]),
            freshness: mv_plan::Freshness::Fresh,
        };
        let got = execute_substitute(&rows, &sub);
        // Oracle: the query evaluated directly.
        let query = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::cmp(S::col(cr(0, 5)), CmpOp::Lt, S::lit(20i64)),
            vec![NamedExpr::new(S::col(cr(0, 0)), "p_partkey")],
        );
        let want = execute_spjg(&db, &query);
        assert!(bag_eq(&got, &want));
        assert!(!got.is_empty());
    }
}
