//! Aggregation accumulators with SQL semantics.

use mv_catalog::Value;
use mv_data::Row;
use mv_expr::ColRef;
use mv_plan::AggFunc;

/// A SUM accumulator: ignores NULLs, stays in exact integer arithmetic as
/// long as every input is an integer, and switches to floating point on
/// the first float.
#[derive(Debug, Clone, Default)]
pub struct SumAcc {
    seen: bool,
    int_sum: i64,
    float_sum: f64,
    is_float: bool,
}

impl SumAcc {
    /// Fold one value.
    pub fn add(&mut self, v: &Value) {
        match v {
            Value::Null => {}
            Value::Int(i) => {
                self.seen = true;
                if self.is_float {
                    self.float_sum += *i as f64;
                } else {
                    self.int_sum = self.int_sum.wrapping_add(*i);
                }
            }
            Value::Float(f) => {
                self.seen = true;
                if !self.is_float {
                    self.is_float = true;
                    self.float_sum = self.int_sum as f64;
                }
                self.float_sum += f;
            }
            // SUM over non-numeric input is a type error; treat as NULL.
            _ => {}
        }
    }

    /// The SQL result: NULL when no non-null input was seen.
    pub fn finish(&self) -> Value {
        if !self.seen {
            Value::Null
        } else if self.is_float {
            Value::Float(self.float_sum)
        } else {
            Value::Int(self.int_sum)
        }
    }

    /// The zero-defaulting result used by [`AggFunc::SumZero`].
    pub fn finish_zero(&self) -> Value {
        if !self.seen {
            Value::Int(0)
        } else {
            self.finish()
        }
    }
}

/// Accumulator state for one group across all aggregates of a block.
#[derive(Debug, Clone)]
pub struct GroupAcc {
    count: i64,
    sums: Vec<SumAcc>,
}

impl GroupAcc {
    /// Fresh state for `n_aggs` aggregate functions.
    pub fn new(n_aggs: usize) -> Self {
        GroupAcc {
            count: 0,
            sums: vec![SumAcc::default(); n_aggs],
        }
    }

    /// Fold one input row into the group.
    pub fn add(&mut self, aggs: &[AggFunc], row_value: &impl Fn(ColRef) -> Value) {
        self.count += 1;
        for (i, agg) in aggs.iter().enumerate() {
            if let Some(arg) = agg.argument() {
                self.sums[i].add(&arg.eval(row_value));
            }
        }
    }

    /// Final values for each aggregate, in order.
    pub fn finish(&self, aggs: &[AggFunc]) -> Row {
        aggs.iter()
            .enumerate()
            .map(|(i, agg)| match agg {
                AggFunc::CountStar => Value::Int(self.count),
                AggFunc::Sum(_) => self.sums[i].finish(),
                AggFunc::SumZero(_) => self.sums[i].finish_zero(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_expr::ScalarExpr as S;

    #[test]
    fn sum_stays_integer_exact() {
        let mut acc = SumAcc::default();
        for i in 0..1000i64 {
            acc.add(&Value::Int(i));
        }
        assert_eq!(acc.finish(), Value::Int(499_500));
    }

    #[test]
    fn sum_switches_to_float() {
        let mut acc = SumAcc::default();
        acc.add(&Value::Int(1));
        acc.add(&Value::Float(0.5));
        acc.add(&Value::Int(2));
        assert_eq!(acc.finish(), Value::Float(3.5));
    }

    #[test]
    fn sum_ignores_nulls_and_empty_is_null() {
        let mut acc = SumAcc::default();
        acc.add(&Value::Null);
        assert_eq!(acc.finish(), Value::Null);
        assert_eq!(acc.finish_zero(), Value::Int(0));
        acc.add(&Value::Int(7));
        acc.add(&Value::Null);
        assert_eq!(acc.finish(), Value::Int(7));
    }

    #[test]
    fn group_acc_counts_and_sums() {
        let aggs = vec![
            AggFunc::CountStar,
            AggFunc::Sum(S::col(ColRef::new(0, 0))),
            AggFunc::SumZero(S::col(ColRef::new(0, 1))),
        ];
        let mut g = GroupAcc::new(aggs.len());
        for (a, b) in [(1i64, 10i64), (2, 20), (3, 30)] {
            let row = move |c: ColRef| {
                if c.col.0 == 0 {
                    Value::Int(a)
                } else {
                    Value::Int(b)
                }
            };
            g.add(&aggs, &row);
        }
        assert_eq!(
            g.finish(&aggs),
            vec![Value::Int(3), Value::Int(6), Value::Int(60)]
        );
    }

    #[test]
    fn empty_group_scalar_results() {
        let aggs = vec![
            AggFunc::CountStar,
            AggFunc::Sum(S::col(ColRef::new(0, 0))),
            AggFunc::SumZero(S::col(ColRef::new(0, 0))),
        ];
        let g = GroupAcc::new(aggs.len());
        assert_eq!(
            g.finish(&aggs),
            vec![Value::Int(0), Value::Null, Value::Int(0)]
        );
    }
}
