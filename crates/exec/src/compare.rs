//! Multiset (bag) comparison of result sets.
//!
//! SQL is defined over bags: "it is not sufficient that two expressions
//! produce the same set of rows but any duplicate rows must also occur
//! exactly the same number of times" (section 3.1, requirement 4). All
//! correctness tests in this reproduction therefore compare results as
//! bags.

use mv_data::Row;
use std::collections::HashMap;

/// Are the two results equal as bags?
pub fn bag_eq(a: &[Row], b: &[Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut counts: HashMap<&Row, i64> = HashMap::new();
    for r in a {
        *counts.entry(r).or_insert(0) += 1;
    }
    for r in b {
        match counts.get_mut(r) {
            Some(c) => *c -= 1,
            None => return false,
        }
    }
    counts.values().all(|&c| c == 0)
}

/// A human-readable description of the difference between two bags, or
/// `None` if they are equal. Reports up to five rows from each side.
pub fn bag_diff(a: &[Row], b: &[Row]) -> Option<String> {
    let mut counts: HashMap<&Row, i64> = HashMap::new();
    for r in a {
        *counts.entry(r).or_insert(0) += 1;
    }
    for r in b {
        *counts.entry(r).or_insert(0) -= 1;
    }
    let only_a: Vec<&&Row> = counts
        .iter()
        .filter(|(_, &c)| c > 0)
        .map(|(r, _)| r)
        .take(5)
        .collect();
    let only_b: Vec<&&Row> = counts
        .iter()
        .filter(|(_, &c)| c < 0)
        .map(|(r, _)| r)
        .take(5)
        .collect();
    if only_a.is_empty() && only_b.is_empty() {
        None
    } else {
        Some(format!(
            "left has {} rows, right has {} rows; only-left sample: {:?}; only-right sample: {:?}",
            a.len(),
            b.len(),
            only_a,
            only_b
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::Value;

    fn r(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn equal_bags_in_any_order() {
        let a = vec![r(&[1]), r(&[2]), r(&[1])];
        let b = vec![r(&[2]), r(&[1]), r(&[1])];
        assert!(bag_eq(&a, &b));
        assert!(bag_diff(&a, &b).is_none());
    }

    #[test]
    fn duplicate_counts_matter() {
        let a = vec![r(&[1]), r(&[1]), r(&[2])];
        let b = vec![r(&[1]), r(&[2]), r(&[2])];
        assert!(!bag_eq(&a, &b));
        assert!(bag_diff(&a, &b).is_some());
    }

    #[test]
    fn length_mismatch() {
        let a = vec![r(&[1])];
        let b = vec![r(&[1]), r(&[1])];
        assert!(!bag_eq(&a, &b));
    }

    #[test]
    fn empty_bags_equal() {
        assert!(bag_eq(&[], &[]));
        assert!(bag_diff(&[], &[]).is_none());
    }
}
