//! Direct evaluation of an SPJG block against base tables.
//!
//! This is the semantics oracle: a straightforward, obviously-correct
//! implementation (incremental hash joins over the column-equality
//! conjuncts, then residual filtering, then projection or grouping) that
//! the substitute and physical paths are tested against.

use crate::agg::GroupAcc;
use mv_catalog::Value;
use mv_data::{Database, Row};
use mv_expr::{ColRef, Conjunct};
use mv_plan::{OutputList, SpjgExpr};
use std::collections::HashMap;

/// Per-occurrence column offsets in the wide (concatenated) row.
fn offsets(db: &Database, expr: &SpjgExpr) -> Vec<usize> {
    let mut out = Vec::with_capacity(expr.tables.len() + 1);
    let mut acc = 0;
    for &t in &expr.tables {
        out.push(acc);
        acc += db.catalog.table(t).columns.len();
    }
    out.push(acc);
    out
}

fn accessor<'a>(offsets: &'a [usize], row: &'a [Value]) -> impl Fn(ColRef) -> Value + 'a {
    move |c: ColRef| row[offsets[c.occ.0 as usize] + c.col.0 as usize].clone()
}

/// Does every column of the conjunct come from occurrences `< bound`?
fn conjunct_bound(conj: &Conjunct, bound: u32) -> bool {
    conj.columns().iter().all(|c| c.occ.0 < bound)
}

/// Evaluate the SPJ part: all occurrences joined, every conjunct applied.
/// Returns wide rows (concatenation of all occurrences' columns).
pub fn execute_spj_part(db: &Database, expr: &SpjgExpr) -> Vec<Row> {
    let offs = offsets(db, expr);
    let mut applied = vec![false; expr.conjuncts.len()];
    // Start from a single empty prefix row.
    let mut current: Vec<Row> = vec![Vec::new()];

    for (occ_idx, &table) in expr.tables.iter().enumerate() {
        let occ = occ_idx as u32;
        // Equijoin pairs between bound occurrences and the new one.
        let mut left_keys: Vec<ColRef> = Vec::new(); // in bound prefix
        let mut right_keys: Vec<ColRef> = Vec::new(); // on the new occurrence
        for (i, conj) in expr.conjuncts.iter().enumerate() {
            if applied[i] {
                continue;
            }
            if let Conjunct::ColumnEq(a, b) = conj {
                let (a, b) = (*a, *b);
                if a.occ.0 < occ && b.occ.0 == occ {
                    left_keys.push(a);
                    right_keys.push(b);
                    applied[i] = true;
                } else if b.occ.0 < occ && a.occ.0 == occ {
                    left_keys.push(b);
                    right_keys.push(a);
                    applied[i] = true;
                }
            }
        }

        let scan = db.rows(table);
        let mut next: Vec<Row> = Vec::new();
        if left_keys.is_empty() {
            // Cartesian step.
            for prefix in &current {
                for row in scan {
                    let mut wide = prefix.clone();
                    wide.extend(row.iter().cloned());
                    next.push(wide);
                }
            }
        } else {
            // Hash join: build on the (usually smaller) prefix side.
            let mut table_map: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
            for row in scan {
                let key: Vec<Value> = right_keys
                    .iter()
                    .map(|c| row[c.col.0 as usize].clone())
                    .collect();
                // SQL equality: NULL keys never join.
                if key.iter().any(Value::is_null) {
                    continue;
                }
                table_map.entry(key).or_default().push(row);
            }
            for prefix in &current {
                let key: Vec<Value> = left_keys
                    .iter()
                    .map(|c| prefix[offs[c.occ.0 as usize] + c.col.0 as usize].clone())
                    .collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = table_map.get(&key) {
                    for row in matches {
                        let mut wide = prefix.clone();
                        wide.extend(row.iter().cloned());
                        next.push(wide);
                    }
                }
            }
        }
        current = next;

        // Apply every remaining conjunct that is now fully bound.
        for (i, conj) in expr.conjuncts.iter().enumerate() {
            if applied[i] || !conjunct_bound(conj, occ + 1) {
                continue;
            }
            applied[i] = true;
            let pred = conj.to_bool();
            current.retain(|row| pred.eval(&accessor(&offs, row)) == Some(true));
        }
    }
    debug_assert!(applied.iter().all(|a| *a), "unapplied conjunct");
    current
}

/// Evaluate the whole block: SPJ part, then projection or grouping.
pub fn execute_spjg(db: &Database, expr: &SpjgExpr) -> Vec<Row> {
    let wide = execute_spj_part(db, expr);
    let offs = offsets(db, expr);
    match &expr.output {
        OutputList::Spj(items) => wide
            .iter()
            .map(|row| {
                let get = accessor(&offs, row);
                items.iter().map(|ne| ne.expr.eval(&get)).collect()
            })
            .collect(),
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            let aggs: Vec<_> = aggregates.iter().map(|a| a.func.clone()).collect();
            let mut groups: HashMap<Vec<Value>, GroupAcc> = HashMap::new();
            for row in &wide {
                let get = accessor(&offs, row);
                let key: Vec<Value> = group_by.iter().map(|g| g.expr.eval(&get)).collect();
                groups
                    .entry(key)
                    .or_insert_with(|| GroupAcc::new(aggs.len()))
                    .add(&aggs, &get);
            }
            // SQL: a scalar aggregate over empty input still yields one row.
            if groups.is_empty() && group_by.is_empty() {
                groups.insert(Vec::new(), GroupAcc::new(aggs.len()));
            }
            groups
                .into_iter()
                .map(|(mut key, acc)| {
                    key.extend(acc.finish(&aggs));
                    key
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_data::{generate_tpch, TpchScale};
    use mv_expr::{BinOp, BoolExpr, CmpOp, ScalarExpr as S};
    use mv_plan::{AggFunc, NamedAgg, NamedExpr};

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    #[test]
    fn single_table_filter_and_project() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 3);
        let e = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::cmp(S::col(cr(0, 5)), CmpOp::Le, S::lit(10i64)),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let rows = execute_spjg(&db, &e);
        let expected = db
            .rows(t.part)
            .iter()
            .filter(|r| matches!(r[5], Value::Int(v) if v <= 10))
            .count();
        assert_eq!(rows.len(), expected);
        assert!(expected > 0, "tiny scale should have small parts");
    }

    #[test]
    fn fk_join_preserves_lineitem_cardinality() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 3);
        // lineitem join orders on l_orderkey = o_orderkey: FK join, so
        // exactly one orders row per lineitem.
        let e = SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let rows = execute_spjg(&db, &e);
        assert_eq!(rows.len(), db.row_count(t.lineitem));
    }

    #[test]
    fn cross_join_when_no_equijoin() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 3);
        let e = SpjgExpr::spj(
            vec![t.region, t.nation],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "r")],
        );
        let rows = execute_spjg(&db, &e);
        assert_eq!(rows.len(), 5 * 25);
    }

    #[test]
    fn residual_predicates_applied() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 3);
        // Parts whose name contains 'steel'.
        let e = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Like {
                expr: S::col(cr(0, 1)),
                pattern: "%steel%".into(),
                negated: false,
            },
            vec![NamedExpr::new(S::col(cr(0, 1)), "name")],
        );
        let rows = execute_spjg(&db, &e);
        assert!(!rows.is_empty(), "color pool includes steel");
        for r in &rows {
            let Value::Str(s) = &r[0] else { panic!() };
            assert!(s.contains("steel"));
        }
    }

    #[test]
    fn grouped_aggregation_matches_manual_computation() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 3);
        // SELECT o_custkey, count(*), sum(o_totalprice) FROM orders GROUP BY o_custkey
        let e = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![
                NamedAgg::new(AggFunc::CountStar, "cnt"),
                NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total"),
            ],
        );
        let rows = execute_spjg(&db, &e);
        let mut manual: HashMap<Value, (i64, i64)> = HashMap::new();
        for r in db.rows(t.orders) {
            let e = manual.entry(r[1].clone()).or_default();
            e.0 += 1;
            let Value::Int(p) = r[3] else { panic!() };
            e.1 += p;
        }
        assert_eq!(rows.len(), manual.len());
        for row in &rows {
            let (cnt, total) = manual[&row[0]];
            assert_eq!(row[1], Value::Int(cnt));
            assert_eq!(row[2], Value::Int(total));
        }
    }

    #[test]
    fn scalar_aggregate_over_empty_input() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 3);
        let e = SpjgExpr::aggregate(
            vec![t.part],
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(0i64)), // empty
            vec![],
            vec![
                NamedAgg::new(AggFunc::CountStar, "cnt"),
                NamedAgg::new(AggFunc::Sum(S::col(cr(0, 5))), "s"),
            ],
        );
        let rows = execute_spjg(&db, &e);
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
        // Grouped aggregation over empty input yields no rows.
        let e = SpjgExpr::aggregate(
            vec![t.part],
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(0i64)),
            vec![NamedExpr::new(S::col(cr(0, 5)), "sz")],
            vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
        );
        assert!(execute_spjg(&db, &e).is_empty());
    }

    #[test]
    fn expression_outputs_evaluated() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 3);
        let e = SpjgExpr::spj(
            vec![t.lineitem],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(
                S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5))),
                "product",
            )],
        );
        let rows = execute_spjg(&db, &e);
        for (out, src) in rows.iter().zip(db.rows(t.lineitem)) {
            let (Value::Int(q), Value::Int(p)) = (&src[4], &src[5]) else {
                panic!()
            };
            assert_eq!(out[0], Value::Int(q * p));
        }
    }

    #[test]
    fn three_way_join_with_ranges() {
        let (db, t) = generate_tpch(&TpchScale::tiny(), 5);
        let pred = BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)), // l_orderkey = o_orderkey
            BoolExpr::col_eq(cr(1, 1), cr(2, 0)), // o_custkey = c_custkey
            BoolExpr::cmp(S::col(cr(2, 0)), CmpOp::Le, S::lit(10i64)),
        ]);
        let e = SpjgExpr::spj(
            vec![t.lineitem, t.orders, t.customer],
            pred,
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
                NamedExpr::new(S::col(cr(2, 0)), "c_custkey"),
            ],
        );
        let rows = execute_spjg(&db, &e);
        for r in &rows {
            let Value::Int(ck) = r[1] else { panic!() };
            assert!(ck <= 10);
        }
        // Cross-check with a manual count.
        let custkeys: std::collections::HashSet<Value> = db
            .rows(t.customer)
            .iter()
            .filter(|r| matches!(r[0], Value::Int(v) if v <= 10))
            .map(|r| r[0].clone())
            .collect();
        let orderkeys: std::collections::HashSet<Value> = db
            .rows(t.orders)
            .iter()
            .filter(|r| custkeys.contains(&r[1]))
            .map(|r| r[0].clone())
            .collect();
        let expected = db
            .rows(t.lineitem)
            .iter()
            .filter(|r| orderkeys.contains(&r[0]))
            .count();
        assert_eq!(rows.len(), expected);
    }
}
