//! Probe: the generated workload must actually produce view matches, or
//! the figure benchmarks would be vacuous.
use mv_core::{MatchConfig, MatchingEngine};
use mv_data::{generate_tpch, TpchScale};
use mv_workload::{Generator, WorkloadParams};

#[test]
fn workload_produces_matches() {
    let (db, _) = generate_tpch(&TpchScale::small(), 1);
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    let views = Generator::new(&db.catalog, WorkloadParams::views(), 101).views(200);
    for v in views {
        engine.add_view(v).unwrap();
    }
    let queries = Generator::new(&db.catalog, WorkloadParams::queries(), 202).queries(100);
    let mut total = 0usize;
    let mut queries_with = 0usize;
    for q in &queries {
        let subs = engine.find_substitutes(q);
        total += subs.len();
        queries_with += (!subs.is_empty()) as usize;
    }
    let stats = engine.stats();
    eprintln!(
        "substitutes total={total} queries_with={queries_with}/100 candidates/inv={:.2} cand_frac={:.4} pass_frac={:.3}",
        stats.candidates as f64 / stats.invocations as f64,
        stats.candidate_fraction(),
        stats.pass_fraction()
    );
    assert!(total > 0, "no substitutes at all — workload mismatch");
}
