//! End-to-end optimizer tests: every optimized plan must produce exactly
//! the same bag of rows as the direct SPJG oracle, with or without
//! materialized views, and views must actually be chosen when they are
//! cheaper.

use mv_core::{MatchConfig, MatchingEngine};
use mv_data::{generate_tpch, Database, TpchScale};
use mv_exec::{bag_diff, execute_plan, execute_spjg, materialize_view, ViewStore};
use mv_expr::{BinOp, BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_optimizer::{Optimizer, OptimizerConfig};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, SpjgExpr, ViewDef};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

/// Build an engine over generated data and materialize every view.
fn setup(views: Vec<ViewDef>) -> (Database, MatchingEngine, ViewStore) {
    let (db, _) = generate_tpch(&TpchScale::tiny(), 20_260_706);
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    let mut store = ViewStore::new();
    for v in views {
        let rows = materialize_view(&db, &v);
        let id = engine.add_view(v).unwrap();
        store.put(id, rows);
    }
    (db, engine, store)
}

/// Optimize and execute, asserting bag equality with the oracle.
fn check(db: &Database, engine: &MatchingEngine, store: &ViewStore, query: &SpjgExpr) {
    let optimizer = Optimizer::new(engine, OptimizerConfig::default());
    let optimized = optimizer.optimize(query);
    let got = execute_plan(db, store, &optimized.plan);
    let want = execute_spjg(db, query);
    if let Some(diff) = bag_diff(&got, &want) {
        panic!("plan mismatch: {diff}\nplan:\n{}", optimized.plan);
    }
}

#[test]
fn single_table_spj() {
    let (db, engine, store) = setup(vec![]);
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let q = SpjgExpr::spj(
        vec![t.part],
        BoolExpr::cmp(S::col(cr(0, 5)), CmpOp::Lt, S::lit(25i64)),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "p_partkey"),
            NamedExpr::new(S::col(cr(0, 5)), "p_size"),
        ],
    );
    check(&db, &engine, &store, &q);
}

#[test]
fn multiway_join_plans_are_correct() {
    let (db, engine, store) = setup(vec![]);
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    // lineitem ⋈ orders ⋈ customer with a range and a residual predicate.
    let pred = BoolExpr::and(vec![
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        BoolExpr::col_eq(cr(1, 1), cr(2, 0)),
        BoolExpr::cmp(S::col(cr(2, 0)), CmpOp::Le, S::lit(15i64)),
        BoolExpr::Like {
            expr: S::col(cr(2, 6)),
            pattern: "B%".into(),
            negated: false,
        },
    ]);
    let q = SpjgExpr::spj(
        vec![t.lineitem, t.orders, t.customer],
        pred,
        vec![
            NamedExpr::new(S::col(cr(0, 1)), "l_partkey"),
            NamedExpr::new(S::col(cr(2, 1)), "c_name"),
        ],
    );
    check(&db, &engine, &store, &q);
}

#[test]
fn aggregation_query_without_views() {
    let (db, engine, store) = setup(vec![]);
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let q = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(
                AggFunc::Sum(S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)))),
                "revenue",
            ),
        ],
    );
    check(&db, &engine, &store, &q);
}

#[test]
fn view_is_chosen_when_cheaper_and_plan_is_correct() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    // A view that precomputes the lineitem-orders join.
    let view = ViewDef::new(
        "lo_join",
        SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            vec![
                NamedExpr::new(S::col(cr(0, 1)), "l_partkey"),
                NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
                NamedExpr::new(S::col(cr(1, 1)), "o_custkey"),
                NamedExpr::new(S::col(cr(1, 0)), "o_orderkey"),
            ],
        ),
    );
    let (db, engine, store) = setup(vec![view]);
    let q = SpjgExpr::spj(
        vec![t.lineitem, t.orders],
        BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Le, S::lit(10i64)),
        ]),
        vec![
            NamedExpr::new(S::col(cr(0, 1)), "l_partkey"),
            NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
        ],
    );
    let optimizer = Optimizer::new(&engine, OptimizerConfig::default());
    let optimized = optimizer.optimize(&q);
    assert!(
        optimized.plan.uses_view(),
        "expected the view, got:\n{}",
        optimized.plan
    );
    let got = execute_plan(&db, &store, &optimized.plan);
    let want = execute_spjg(&db, &q);
    assert!(bag_diff(&got, &want).is_none());
}

#[test]
fn no_alt_mode_matches_but_never_uses_views() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let view = ViewDef::new(
        "all_parts",
        SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "p_partkey"),
                NamedExpr::new(S::col(cr(0, 5)), "p_size"),
            ],
        ),
    );
    let (db, engine, store) = setup(vec![view]);
    let q = SpjgExpr::spj(
        vec![t.part],
        BoolExpr::cmp(S::col(cr(0, 5)), CmpOp::Lt, S::lit(20i64)),
        vec![NamedExpr::new(S::col(cr(0, 0)), "p_partkey")],
    );
    let config = OptimizerConfig {
        produce_substitutes: false,
        ..OptimizerConfig::default()
    };
    let optimizer = Optimizer::new(&engine, config);
    let optimized = optimizer.optimize(&q);
    assert!(!optimized.plan.uses_view());
    // The matcher still ran (its analysis is what the NoAlt series times).
    assert!(engine.stats().invocations > 0);
    let got = execute_plan(&db, &store, &optimized.plan);
    assert!(bag_diff(&got, &execute_spjg(&db, &q)).is_none());
}

#[test]
fn example4_preaggregation_uses_v4() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    // View v4: per-customer order revenue (Example 4 of the paper).
    let revenue = S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)));
    let v4 = ViewDef::new(
        "v4",
        SpjgExpr::aggregate(
            vec![t.lineitem, t.orders],
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
            vec![
                NamedAgg::new(AggFunc::CountStar, "cnt"),
                NamedAgg::new(AggFunc::Sum(revenue.clone()), "revenue"),
            ],
        ),
    );
    let (db, engine, store) = setup(vec![v4]);
    // Query: revenue per nation — requires joining customer and rolling
    // up, exactly Example 4.
    let q = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders, t.customer],
        BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::col_eq(cr(1, 1), cr(2, 0)),
        ]),
        vec![NamedExpr::new(S::col(cr(2, 3)), "c_nationkey")],
        vec![NamedAgg::new(AggFunc::Sum(revenue), "revenue")],
    );
    let optimizer = Optimizer::new(&engine, OptimizerConfig::default());
    let optimized = optimizer.optimize(&q);
    assert!(
        optimized.plan.uses_view(),
        "pre-aggregation should expose v4:\n{}",
        optimized.plan
    );
    let got = execute_plan(&db, &store, &optimized.plan);
    let want = execute_spjg(&db, &q);
    assert!(
        bag_diff(&got, &want).is_none(),
        "{:?}\nplan:\n{}",
        bag_diff(&got, &want),
        optimized.plan
    );
}

#[test]
fn preaggregation_correct_even_without_views() {
    // The eager pre-aggregation transformation itself must be semantics
    // preserving; force it to win by disabling views and comparing.
    let (db, engine, store) = setup(vec![]);
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let q = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders, t.customer],
        BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::col_eq(cr(1, 1), cr(2, 0)),
        ]),
        vec![NamedExpr::new(S::col(cr(2, 3)), "c_nationkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "n"),
            NamedAgg::new(AggFunc::Sum(S::col(cr(0, 4))), "qty"),
        ],
    );
    // Whatever plan wins (pre-agg or not), it must be correct.
    check(&db, &engine, &store, &q);
}

#[test]
fn scalar_aggregate_and_empty_results() {
    let (db, engine, store) = setup(vec![]);
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    // Scalar aggregate over an empty selection: one row, count 0.
    let q = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(0i64)),
        vec![],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total"),
        ],
    );
    check(&db, &engine, &store, &q);
}

#[test]
fn cross_join_queries_are_glued() {
    let (db, engine, store) = setup(vec![]);
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let q = SpjgExpr::spj(
        vec![t.region, t.nation],
        BoolExpr::Literal(true),
        vec![
            NamedExpr::new(S::col(cr(0, 1)), "r_name"),
            NamedExpr::new(S::col(cr(1, 1)), "n_name"),
        ],
    );
    check(&db, &engine, &store, &q);
}

#[test]
fn views_never_change_results_across_many_queries() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    // A pile of views, some useful, some not.
    let views = vec![
        ViewDef::new(
            "parts_sized",
            SpjgExpr::spj(
                vec![t.part],
                BoolExpr::cmp(S::col(cr(0, 5)), CmpOp::Le, S::lit(40i64)),
                vec![
                    NamedExpr::new(S::col(cr(0, 0)), "p_partkey"),
                    NamedExpr::new(S::col(cr(0, 5)), "p_size"),
                    NamedExpr::new(S::col(cr(0, 1)), "p_name"),
                ],
            ),
        ),
        ViewDef::new(
            "li_parts",
            SpjgExpr::spj(
                vec![t.lineitem, t.part],
                BoolExpr::col_eq(cr(0, 1), cr(1, 0)),
                vec![
                    NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
                    NamedExpr::new(S::col(cr(1, 0)), "p_partkey"),
                    NamedExpr::new(S::col(cr(1, 5)), "p_size"),
                    NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
                ],
            ),
        ),
        ViewDef::new(
            "orders_by_cust",
            SpjgExpr::aggregate(
                vec![t.orders],
                BoolExpr::Literal(true),
                vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
                vec![
                    NamedAgg::new(AggFunc::CountStar, "cnt"),
                    NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total"),
                ],
            ),
        ),
    ];
    let (db, engine, store) = setup(views);
    let queries = vec![
        SpjgExpr::spj(
            vec![t.part],
            BoolExpr::cmp(S::col(cr(0, 5)), CmpOp::Le, S::lit(12i64)),
            vec![NamedExpr::new(S::col(cr(0, 0)), "p_partkey")],
        ),
        SpjgExpr::spj(
            vec![t.lineitem, t.part],
            BoolExpr::and(vec![
                BoolExpr::col_eq(cr(0, 1), cr(1, 0)),
                BoolExpr::cmp(S::col(cr(1, 5)), CmpOp::Le, S::lit(30i64)),
            ]),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
                NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
            ],
        ),
        SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Le, S::lit(20i64)),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total")],
        ),
        SpjgExpr::aggregate(
            vec![t.lineitem, t.part],
            BoolExpr::col_eq(cr(0, 1), cr(1, 0)),
            vec![NamedExpr::new(S::col(cr(1, 3)), "p_brand")],
            vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
        ),
    ];
    for q in &queries {
        check(&db, &engine, &store, q);
    }
}
