//! The cost model.
//!
//! Costs are in abstract "row units". The model only needs to rank
//! alternatives sensibly: view scans beat re-joining base tables when the
//! view is smaller than the join's inputs, hash joins beat nested loops on
//! anything non-tiny, and pre-aggregation pays off when it collapses many
//! rows early. Cardinalities come from [`mv_plan::card`].

/// Tunable cost constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost per row produced by a scan.
    pub scan_row: f64,
    /// Cost per input row of a filter.
    pub filter_row: f64,
    /// Cost per build-side row of a hash join.
    pub hash_build_row: f64,
    /// Cost per probe-side row of a hash join.
    pub hash_probe_row: f64,
    /// Cost per pair examined by a nested-loop join.
    pub nl_pair: f64,
    /// Cost per input row of a hash aggregate.
    pub agg_row: f64,
    /// Cost per row of a projection.
    pub project_row: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_row: 1.0,
            filter_row: 0.1,
            hash_build_row: 1.5,
            hash_probe_row: 1.0,
            nl_pair: 0.3,
            agg_row: 1.2,
            project_row: 0.05,
        }
    }
}

impl CostModel {
    /// Scan cost for `rows` stored rows.
    pub fn scan(&self, rows: f64) -> f64 {
        self.scan_row * rows
    }

    /// Filter cost over `rows` input rows.
    pub fn filter(&self, rows: f64) -> f64 {
        self.filter_row * rows
    }

    /// Hash join cost.
    pub fn hash_join(&self, build: f64, probe: f64, out: f64) -> f64 {
        self.hash_build_row * build + self.hash_probe_row * probe + self.project_row * out
    }

    /// Nested-loop join cost.
    pub fn nested_loop(&self, left: f64, right: f64) -> f64 {
        self.nl_pair * left * right
    }

    /// Hash aggregation cost.
    pub fn aggregate(&self, rows: f64, groups: f64) -> f64 {
        self.agg_row * rows + groups
    }

    /// Projection cost.
    pub fn project(&self, rows: f64) -> f64 {
        self.project_row * rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_beats_nested_loop_at_scale() {
        let m = CostModel::default();
        let hj = m.hash_join(1000.0, 1000.0, 1000.0);
        let nl = m.nested_loop(1000.0, 1000.0);
        assert!(hj < nl);
        // On tiny inputs nested loop can win.
        let hj = m.hash_join(2.0, 2.0, 2.0);
        let nl = m.nested_loop(2.0, 2.0);
        assert!(nl < hj);
    }

    #[test]
    fn view_scan_cheaper_than_join() {
        let m = CostModel::default();
        // Scanning a 100-row view vs joining two 10k-row tables.
        let view = m.scan(100.0) + m.filter(100.0);
        let join = m.scan(10_000.0) * 2.0 + m.hash_join(10_000.0, 10_000.0, 40_000.0);
        assert!(view < join / 100.0);
    }
}
