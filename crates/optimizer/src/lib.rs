//! A transformation-based query optimizer with integrated view matching.
//!
//! The paper integrates its view-matching algorithm into SQL Server's
//! Cascades-based optimizer as an ordinary transformation rule: "multiple
//! rewrites may be generated; some exploiting materialized views, some
//! not. All rewrites participate in the normal cost-based optimization."
//! This crate reproduces that integration with a memo-based optimizer:
//!
//! * a **memo** of groups, one per *connected subset* of the query's table
//!   occurrences — the plan space that Cascades' join-commutativity and
//!   join-associativity rules enumerate;
//! * per group, **physical alternatives**: scans, hash/nested-loop joins
//!   over every connected partition, and — via the view-matching rule —
//!   compensated scans of materialized views;
//! * the **eager pre-aggregation** transformation (Yan & Larson, cited as
//!   \[16\]) that pushes a group-by below the top joins; the view-matching
//!   rule fires on the pre-aggregated block exactly as in the paper's
//!   Example 4;
//! * a simple **cost model** over the cardinality estimates of
//!   [`mv_plan::card`], so the choice among substitutes and join orders is
//!   fully cost based.
//!
//! The optimizer never *requires* views: with [`OptimizerConfig::use_views`]
//! off it is a plain join-order optimizer, which is the baseline of the
//! paper's Figure 2.

pub mod block;
pub mod cost;
pub mod optimizer;

pub use block::BlockInfo;
pub use cost::CostModel;
pub use optimizer::{Optimized, Optimizer, OptimizerConfig, OptimizerStats, PlanInvariant};
