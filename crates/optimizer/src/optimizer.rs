//! The memo-based optimizer with the view-matching rule.

use crate::block::{BlockInfo, Subset};
use crate::cost::CostModel;
use mv_core::MatchingEngine;
use mv_expr::{BoolExpr, ColRef, Conjunct, OccId, ScalarExpr};
use mv_plan::{card, AggFunc, NamedAgg, NamedExpr, OutputList, PhysicalPlan, SpjgExpr, Substitute};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;

/// Optimizer settings. The combinations of `use_views` and
/// `produce_substitutes` reproduce the four series of the paper's Figure 2:
/// baseline (views off), Alt (views on), and NoAlt (matching runs, but "the
/// view-matching algorithm performed its normal analysis but always
/// returned without producing substitutes").
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Invoke the view-matching rule at all.
    pub use_views: bool,
    /// Turn the matches into plan alternatives. With this off the matcher
    /// still does its full analysis per invocation (the "No Alt" series).
    pub produce_substitutes: bool,
    /// Generate eager pre-aggregation alternatives (Example 4).
    pub enable_preaggregation: bool,
    /// Cost constants.
    pub cost: CostModel,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            use_views: true,
            produce_substitutes: true,
            enable_preaggregation: true,
            cost: CostModel::default(),
        }
    }
}

/// Counters describing one `optimize` call.
#[derive(Debug, Clone, Default)]
pub struct OptimizerStats {
    /// Memo groups created (connected subsets).
    pub groups: usize,
    /// Physical alternatives considered.
    pub alternatives: usize,
    /// Substitute alternatives considered.
    pub substitute_alternatives: usize,
}

/// A violated optimizer invariant — the typed form of what used to be a
/// panic deep inside plan construction, named after the `mv-verify`
/// analyzer rule that covers the same condition.
#[derive(Debug, Clone)]
pub struct PlanInvariant {
    /// Analyzer rule code (MV017, plan-invariant).
    pub rule: &'static str,
    /// Description of the violation.
    pub detail: String,
}

impl PlanInvariant {
    fn new(detail: String) -> Self {
        PlanInvariant {
            rule: "MV017",
            detail,
        }
    }
}

impl fmt::Display for PlanInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] plan invariant violated: {}",
            self.rule, self.detail
        )
    }
}

impl std::error::Error for PlanInvariant {}

/// The result of optimization.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The winning physical plan.
    pub plan: PhysicalPlan,
    /// Its estimated cost.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Search counters.
    pub stats: OptimizerStats,
}

/// One memo group: the best known plan for a connected subset.
struct Group {
    layout: Vec<ColRef>,
    rows: f64,
    cost: f64,
    plan: PhysicalPlan,
}

/// The optimizer. Holds the matching engine (and through it the catalog
/// and the registered views) behind any [`Borrow`] — a plain `&engine`
/// for single-threaded use, or an `Arc<MatchingEngine>` so concurrent
/// optimizer instances on different threads share one engine (and one
/// filter tree) without cloning it.
pub struct Optimizer<E: Borrow<MatchingEngine>> {
    engine: E,
    config: OptimizerConfig,
}

/// How constrained is a view output position by the compensating
/// predicates: 2 = equality, 1 = range bound, 0 = unconstrained.
fn constraint_strength(predicates: &[BoolExpr], pos: usize) -> u8 {
    let mut strength = 0;
    for p in predicates {
        if let BoolExpr::Compare { op, left, right } = p {
            let col_const = match (left.as_column(), right.as_column()) {
                (Some(c), None) if right.is_constant() => Some(c),
                (None, Some(c)) if left.is_constant() => Some(c),
                _ => None,
            };
            if col_const.map(|c| c.col.0 as usize) == Some(pos) {
                strength = strength.max(match op {
                    mv_expr::CmpOp::Eq => 2,
                    mv_expr::CmpOp::Ne => 0,
                    _ => 1,
                });
            }
        }
    }
    strength
}

/// Fraction of the view the best available index lets us scan, given the
/// compensating predicates. A matched equality prefix column shrinks the
/// scan 20x, a matched leading range bound 3x (coarse, selectivity-free
/// index-seek modeling; 1.0 = full scan).
fn index_seek_factor(view: &mv_plan::ViewDef, predicates: &[BoolExpr]) -> f64 {
    if predicates.is_empty() {
        return 1.0;
    }
    let mut best: f64 = 1.0;
    let indexes = std::iter::once(&view.key).chain(view.secondary_indexes.iter());
    for index in indexes {
        let mut factor = 1.0;
        for &pos in index {
            match constraint_strength(predicates, pos) {
                2 => factor *= 0.05,
                1 => {
                    factor *= 0.33;
                    break; // a range bound ends the usable prefix
                }
                _ => break,
            }
        }
        best = best.min(factor);
    }
    best
}

/// Position of a column in a layout.
fn pos_in(layout: &[ColRef], c: ColRef) -> Result<usize, PlanInvariant> {
    layout
        .binary_search(&c)
        .map_err(|_| PlanInvariant::new(format!("column {c} missing from layout {layout:?}")))
}

/// Rewrite an expression's columns to positions in `layout` (occ 0).
fn scalar_to_layout(e: &ScalarExpr, layout: &[ColRef]) -> Result<ScalarExpr, PlanInvariant> {
    let mut missing = None;
    e.try_map_columns(&mut |c| match layout.binary_search(&c) {
        Ok(p) => Some(ColRef::new(0, p as u32)),
        Err(_) => {
            missing = Some(c);
            None
        }
    })
    .ok_or_else(|| {
        PlanInvariant::new(format!(
            "column {} missing from layout {layout:?}",
            missing.expect("recorded on failure")
        ))
    })
}

fn bool_to_layout(e: &BoolExpr, layout: &[ColRef]) -> Result<BoolExpr, PlanInvariant> {
    let mut missing = None;
    e.try_map_columns(&mut |c| match layout.binary_search(&c) {
        Ok(p) => Some(ColRef::new(0, p as u32)),
        Err(_) => {
            missing = Some(c);
            None
        }
    })
    .ok_or_else(|| {
        PlanInvariant::new(format!(
            "column {} missing from layout {layout:?}",
            missing.expect("recorded on failure")
        ))
    })
}

impl<E: Borrow<MatchingEngine>> Optimizer<E> {
    /// Create an optimizer over an engine (`&MatchingEngine`,
    /// `Arc<MatchingEngine>`, or anything else that borrows one).
    pub fn new(engine: E, config: OptimizerConfig) -> Self {
        Optimizer { engine, config }
    }

    /// The shared matching engine.
    fn engine(&self) -> &MatchingEngine {
        self.engine.borrow()
    }

    /// Optimize one SPJG block into a physical plan. Panics on a violated
    /// internal invariant; use [`Optimizer::try_optimize`] to handle those
    /// as typed [`PlanInvariant`] errors instead.
    pub fn optimize(&self, query: &SpjgExpr) -> Optimized {
        self.try_optimize(query).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Optimize one SPJG block into a physical plan, reporting violated
    /// internal invariants (a column missing from a derived layout, a
    /// subset with no plan) as [`PlanInvariant`] errors.
    pub fn try_optimize(&self, query: &SpjgExpr) -> Result<Optimized, PlanInvariant> {
        if query.tables.is_empty() {
            return Err(PlanInvariant::new(
                "queries must reference at least one table".to_string(),
            ));
        }
        let info = BlockInfo::new(query);
        let mut stats = OptimizerStats::default();
        let mut memo: HashMap<Subset, Group> = HashMap::new();

        for s in info.connected_subsets() {
            let group = self.optimize_subset(&info, s, &memo, &mut stats)?;
            memo.insert(s, group);
        }
        stats.groups = memo.len();

        // Disconnected queries (cross products) are glued together with
        // nested-loop joins over the connected components.
        let top = self.glue_components(&info, &mut memo, &mut stats)?;

        let optimized = if query.is_aggregate() {
            self.finish_aggregate(&info, top, &memo, &mut stats)?
        } else {
            self.finish_spj(&info, top, &memo, &mut stats)?
        };
        // Debug-mode oracle: the independent plan analyzer re-checks every
        // column reference, join key, and aggregate argument of the winning
        // plan against its input arities. Compiled out of release builds.
        #[cfg(debug_assertions)]
        {
            let diags = mv_verify::verify_plan(
                self.engine().catalog(),
                &self.engine().views(),
                &optimized.plan,
            );
            assert!(
                diags.is_empty(),
                "mv-verify rejected the optimized plan:\n{}",
                diags
                    .iter()
                    .map(|d| d.to_json())
                    .collect::<Vec<_>>()
                    .join("\n"),
            );
        }
        Ok(Optimized { stats, ..optimized })
    }

    /// Ensure a group exists covering all occurrences; returns its subset
    /// key. For connected queries this is a no-op.
    fn glue_components(
        &self,
        info: &BlockInfo,
        memo: &mut HashMap<Subset, Group>,
        stats: &mut OptimizerStats,
    ) -> Result<Subset, PlanInvariant> {
        if memo.contains_key(&info.all) {
            return Ok(info.all);
        }
        // Combine the maximal connected components with cross joins.
        let mut components: Vec<Subset> = memo.keys().copied().collect();
        components.retain(|&s| !memo.keys().any(|&o| o != s && o & s == s));
        components.sort_by(|a, b| {
            memo[a]
                .rows
                .partial_cmp(&memo[b].rows)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut acc = components[0];
        for &c in &components[1..] {
            if acc & c != 0 {
                continue;
            }
            let combined = acc | c;
            let layout = info.required_columns(combined);
            let (a, b) = (&memo[&acc], &memo[&c]);
            let rows = a.rows * b.rows;
            let mut exprs = Vec::with_capacity(layout.len());
            for &col in &layout {
                let pos = if a.layout.contains(&col) {
                    pos_in(&a.layout, col)?
                } else {
                    a.layout.len() + pos_in(&b.layout, col)?
                };
                exprs.push(ScalarExpr::Column(ColRef::new(0, pos as u32)));
            }
            let plan = PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::NestedLoopJoin {
                    left: Box::new(a.plan.clone()),
                    right: Box::new(b.plan.clone()),
                    predicate: None,
                }),
                exprs,
            };
            let cost = a.cost + b.cost + self.config.cost.nested_loop(a.rows, b.rows);
            stats.alternatives += 1;
            memo.insert(
                combined,
                Group {
                    layout,
                    rows,
                    cost,
                    plan,
                },
            );
            acc = combined;
        }
        Ok(acc)
    }

    /// The SPJ block for a subset: its tables (occurrences reindexed
    /// densely), the conjuncts it covers, and the required columns as
    /// outputs. This is the expression on which the view-matching rule is
    /// invoked.
    fn subset_block(&self, info: &BlockInfo, s: Subset) -> (SpjgExpr, Vec<ColRef>) {
        let members = info.members(s);
        let occ_new: HashMap<OccId, OccId> = members
            .iter()
            .enumerate()
            .map(|(i, &o)| (o, OccId(i as u32)))
            .collect();
        let remap = |c: ColRef| ColRef {
            occ: occ_new[&c.occ],
            col: c.col,
        };
        let tables = members.iter().map(|&o| info.expr.table_of(o)).collect();
        let conjuncts: Vec<Conjunct> = info
            .covered(s)
            .into_iter()
            .map(|i| {
                info.expr.conjuncts[i]
                    .try_map_columns(&mut |c| Some(remap(c)))
                    .expect("infallible remap")
            })
            .collect();
        let layout = info.required_columns(s);
        let outputs = layout
            .iter()
            .enumerate()
            .map(|(i, &c)| NamedExpr::new(ScalarExpr::Column(remap(c)), format!("c{i}")))
            .collect();
        (
            SpjgExpr {
                tables,
                conjuncts,
                output: OutputList::Spj(outputs),
            },
            layout,
        )
    }

    /// Build the physical alternative for a substitute: scan the view,
    /// apply the compensating predicates, project or re-aggregate.
    fn substitute_plan(&self, sub: &Substitute) -> (PhysicalPlan, f64) {
        let views = self.engine().views();
        let view = views.get(sub.view);
        let view_rows = card::estimate_rows(&view.expr, self.engine().catalog());
        // Index-aware scan costing: "any secondary indexes defined on a
        // materialized view will be considered automatically in the same
        // way as for base tables" (section 2). When the compensating
        // predicates constrain a prefix of the clustered key or of a
        // secondary index, the scan is costed as an index seek.
        let seek_factor = index_seek_factor(view, &sub.predicates);
        let scanned = (view_rows * seek_factor).max(1.0);
        let mut plan = PhysicalPlan::ViewScan { view: sub.view };
        let mut cost = self.config.cost.scan(scanned);
        // Base-table backjoins (section 7 extension): each one is a
        // cardinality-preserving hash join against the base table.
        for bj in &sub.backjoins {
            let table_rows = self
                .engine()
                .catalog()
                .stats(bj.table)
                .map(|st| st.rows as f64)
                .unwrap_or(card::DEFAULT_TABLE_ROWS);
            plan = PhysicalPlan::HashJoin {
                left: Box::new(plan),
                right: Box::new(PhysicalPlan::TableScan { table: bj.table }),
                left_keys: bj.key.iter().map(|(p, _)| *p).collect(),
                right_keys: bj.key.iter().map(|(_, c)| c.0 as usize).collect(),
                residual: None,
            };
            cost += self.config.cost.scan(table_rows)
                + self.config.cost.hash_join(scanned, table_rows, scanned);
        }
        if !sub.predicates.is_empty() {
            plan = PhysicalPlan::Filter {
                input: Box::new(plan),
                predicate: BoolExpr::and(sub.predicates.clone()),
            };
            cost += self.config.cost.filter(scanned);
        }
        match &sub.output {
            OutputList::Spj(items) => {
                plan = PhysicalPlan::Project {
                    input: Box::new(plan),
                    exprs: items.iter().map(|ne| ne.expr.clone()).collect(),
                };
                cost += self.config.cost.project(view_rows);
            }
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => {
                plan = PhysicalPlan::HashAggregate {
                    input: Box::new(plan),
                    group_by: group_by.iter().map(|ne| ne.expr.clone()).collect(),
                    aggregates: aggregates.iter().map(|na| na.func.clone()).collect(),
                };
                cost += self.config.cost.aggregate(view_rows, view_rows / 2.0);
            }
        }
        (plan, cost)
    }

    /// Optimize one connected subset: scans and joins plus view
    /// substitutes, cheapest wins.
    fn optimize_subset(
        &self,
        info: &BlockInfo,
        s: Subset,
        memo: &HashMap<Subset, Group>,
        stats: &mut OptimizerStats,
    ) -> Result<Group, PlanInvariant> {
        let (block, layout) = self.subset_block(info, s);
        let rows = card::estimate_spj_rows(&block, self.engine().catalog());
        let mut best: Option<(f64, PhysicalPlan)> = None;
        let mut consider = |cost: f64, plan: PhysicalPlan, stats: &mut OptimizerStats| {
            stats.alternatives += 1;
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, plan));
            }
        };

        let members = info.members(s);
        if members.len() == 1 {
            let occ = members[0];
            let table = info.expr.table_of(occ);
            let table_rows = self
                .engine()
                .catalog()
                .stats(table)
                .map(|st| st.rows as f64)
                .unwrap_or(card::DEFAULT_TABLE_ROWS);
            // Scan columns are the base table's columns: a column (occ, c)
            // maps to position c.
            let scan_layout: Vec<ColRef> = (0..self.engine().catalog().table(table).columns.len())
                .map(|c| ColRef {
                    occ,
                    col: mv_catalog::ColumnId(c as u32),
                })
                .collect();
            let mut plan = PhysicalPlan::TableScan { table };
            let mut cost = self.config.cost.scan(table_rows);
            let local: Vec<BoolExpr> = info
                .covered(s)
                .into_iter()
                .map(|i| bool_to_layout(&info.expr.conjuncts[i].to_bool(), &scan_layout))
                .collect::<Result<_, _>>()?;
            if !local.is_empty() {
                plan = PhysicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: BoolExpr::and(local),
                };
                cost += self.config.cost.filter(table_rows);
            }
            let exprs = layout
                .iter()
                .map(|&c| {
                    Ok(ScalarExpr::Column(ColRef::new(
                        0,
                        pos_in(&scan_layout, c)? as u32,
                    )))
                })
                .collect::<Result<_, PlanInvariant>>()?;
            plan = PhysicalPlan::Project {
                input: Box::new(plan),
                exprs,
            };
            cost += self.config.cost.project(rows);
            consider(cost, plan, stats);
        } else {
            // Every connected (left, right) partition.
            let mut a = (s - 1) & s;
            while a > 0 {
                let b = s & !a;
                if info.connected(a) && info.connected(b) {
                    if let (Some(ga), Some(gb)) = (memo.get(&a), memo.get(&b)) {
                        let (cost, plan) = self.join_plan(info, a, b, ga, gb, &layout, rows)?;
                        consider(cost, plan, stats);
                    }
                }
                a = (a - 1) & s;
            }
        }

        // The view-matching rule.
        if self.config.use_views {
            let subs = self.engine().find_substitutes(&block);
            if self.config.produce_substitutes {
                for (_, sub) in subs {
                    stats.substitute_alternatives += 1;
                    let (plan, cost) = self.substitute_plan(&sub);
                    consider(cost, plan, stats);
                }
            }
        }

        let (cost, plan) = best.ok_or_else(|| {
            PlanInvariant::new(format!(
                "connected subset {s:#b} produced no plan alternative"
            ))
        })?;
        Ok(Group {
            layout,
            rows,
            cost,
            plan,
        })
    }

    /// A join alternative for `s = a | b`.
    #[allow(clippy::too_many_arguments)]
    fn join_plan(
        &self,
        info: &BlockInfo,
        a: Subset,
        b: Subset,
        ga: &Group,
        gb: &Group,
        layout: &[ColRef],
        out_rows: f64,
    ) -> Result<(f64, PhysicalPlan), PlanInvariant> {
        // Concatenated layout position of a column.
        let concat_pos = |c: ColRef| -> Result<usize, PlanInvariant> {
            if a & (1 << c.occ.0) != 0 {
                pos_in(&ga.layout, c)
            } else {
                Ok(ga.layout.len() + pos_in(&gb.layout, c)?)
            }
        };
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        for i in info.newly_covered(a, b) {
            match &info.expr.conjuncts[i] {
                Conjunct::ColumnEq(x, y)
                    if (a & (1 << x.occ.0) != 0) != (a & (1 << y.occ.0) != 0) =>
                {
                    let (l, r) = if a & (1 << x.occ.0) != 0 {
                        (*x, *y)
                    } else {
                        (*y, *x)
                    };
                    left_keys.push(pos_in(&ga.layout, l)?);
                    right_keys.push(pos_in(&gb.layout, r)?);
                }
                other => {
                    let mut err = None;
                    let mapped = other
                        .to_bool()
                        .try_map_columns(&mut |c| match concat_pos(c) {
                            Ok(p) => Some(ColRef::new(0, p as u32)),
                            Err(e) => {
                                err = Some(e);
                                None
                            }
                        });
                    match mapped {
                        Some(b) => residual.push(b),
                        None => return Err(err.expect("recorded on failure")),
                    }
                }
            }
        }
        let residual = if residual.is_empty() {
            None
        } else {
            Some(BoolExpr::and(residual))
        };
        let (join, join_cost) = if left_keys.is_empty() {
            (
                PhysicalPlan::NestedLoopJoin {
                    left: Box::new(ga.plan.clone()),
                    right: Box::new(gb.plan.clone()),
                    predicate: residual,
                },
                self.config.cost.nested_loop(ga.rows, gb.rows),
            )
        } else {
            (
                PhysicalPlan::HashJoin {
                    left: Box::new(ga.plan.clone()),
                    right: Box::new(gb.plan.clone()),
                    left_keys,
                    right_keys,
                    residual,
                },
                self.config.cost.hash_join(ga.rows, gb.rows, out_rows),
            )
        };
        let exprs = layout
            .iter()
            .map(|&c| Ok(ScalarExpr::Column(ColRef::new(0, concat_pos(c)? as u32))))
            .collect::<Result<_, PlanInvariant>>()?;
        let plan = PhysicalPlan::Project {
            input: Box::new(join),
            exprs,
        };
        let cost = ga.cost + gb.cost + join_cost + self.config.cost.project(out_rows);
        Ok((cost, plan))
    }

    /// Final plan for an SPJ query: project the top group onto the query's
    /// output expressions, and consider whole-query substitutes (the rule
    /// applied to the root expression with its real output list).
    fn finish_spj(
        &self,
        info: &BlockInfo,
        top: Subset,
        memo: &HashMap<Subset, Group>,
        stats: &mut OptimizerStats,
    ) -> Result<Optimized, PlanInvariant> {
        let g = &memo[&top];
        let OutputList::Spj(items) = &info.expr.output else {
            unreachable!("finish_spj on aggregate")
        };
        let exprs = items
            .iter()
            .map(|ne| scalar_to_layout(&ne.expr, &g.layout))
            .collect::<Result<_, _>>()?;
        let mut best_cost = g.cost + self.config.cost.project(g.rows);
        let mut best_plan = PhysicalPlan::Project {
            input: Box::new(g.plan.clone()),
            exprs,
        };
        stats.alternatives += 1;
        if self.config.use_views {
            let subs = self.engine().find_substitutes(info.expr);
            if self.config.produce_substitutes {
                for (_, sub) in subs {
                    stats.substitute_alternatives += 1;
                    let (plan, cost) = self.substitute_plan(&sub);
                    if cost < best_cost {
                        best_cost = cost;
                        best_plan = plan;
                    }
                }
            }
        }
        Ok(Optimized {
            plan: best_plan,
            cost: best_cost,
            rows: g.rows,
            stats: OptimizerStats::default(),
        })
    }

    /// Final plan for an aggregation query: plain aggregation of the top
    /// group, whole-query substitutes, and eager pre-aggregation
    /// alternatives (with the view-matching rule applied to the
    /// pre-aggregated block — the paper's Example 4).
    fn finish_aggregate(
        &self,
        info: &BlockInfo,
        top: Subset,
        memo: &HashMap<Subset, Group>,
        stats: &mut OptimizerStats,
    ) -> Result<Optimized, PlanInvariant> {
        let g = &memo[&top];
        let OutputList::Aggregate {
            group_by,
            aggregates,
        } = &info.expr.output
        else {
            unreachable!("finish_aggregate on SPJ")
        };
        let final_rows = card::estimate_rows(info.expr, self.engine().catalog());

        // Alternative 1: aggregate the best join plan directly.
        let gb_exprs: Vec<ScalarExpr> = group_by
            .iter()
            .map(|ne| scalar_to_layout(&ne.expr, &g.layout))
            .collect::<Result<_, _>>()?;
        let agg_funcs: Vec<AggFunc> = aggregates
            .iter()
            .map(|na| {
                Ok(match &na.func {
                    AggFunc::CountStar => AggFunc::CountStar,
                    AggFunc::Sum(e) => AggFunc::Sum(scalar_to_layout(e, &g.layout)?),
                    AggFunc::SumZero(e) => AggFunc::SumZero(scalar_to_layout(e, &g.layout)?),
                })
            })
            .collect::<Result<_, PlanInvariant>>()?;
        let mut best_cost = g.cost + self.config.cost.aggregate(g.rows, final_rows);
        let mut best_plan = PhysicalPlan::HashAggregate {
            input: Box::new(g.plan.clone()),
            group_by: gb_exprs,
            aggregates: agg_funcs,
        };
        stats.alternatives += 1;

        // Alternative 2: whole-query substitutes.
        if self.config.use_views {
            let subs = self.engine().find_substitutes(info.expr);
            if self.config.produce_substitutes {
                for (_, sub) in subs {
                    stats.substitute_alternatives += 1;
                    let (plan, cost) = self.substitute_plan(&sub);
                    if cost < best_cost {
                        best_cost = cost;
                        best_plan = plan;
                    }
                }
            }
        }

        // Alternative 3: eager pre-aggregation over each connected
        // partition (S carries the aggregates, R the rest).
        if self.config.enable_preaggregation && info.expr.tables.len() >= 2 && top == info.all {
            let mut s = (info.all - 1) & info.all;
            while s > 0 {
                let r = info.all & !s;
                if info.connected(s) && info.connected(r) {
                    if let Some((cost, plan)) =
                        self.preagg_plan(info, s, r, memo, group_by, aggregates, final_rows, stats)
                    {
                        stats.alternatives += 1;
                        if cost < best_cost {
                            best_cost = cost;
                            best_plan = plan;
                        }
                    }
                }
                s = (s - 1) & info.all;
            }
        }

        Ok(Optimized {
            plan: best_plan,
            cost: best_cost,
            rows: final_rows,
            stats: OptimizerStats::default(),
        })
    }

    /// Build the eager pre-aggregation alternative for the partition
    /// `(s, r)`, if it is semantically applicable.
    #[allow(clippy::too_many_arguments)]
    fn preagg_plan(
        &self,
        info: &BlockInfo,
        s: Subset,
        r: Subset,
        memo: &HashMap<Subset, Group>,
        group_by: &[NamedExpr],
        aggregates: &[NamedAgg],
        final_rows: f64,
        stats: &mut OptimizerStats,
    ) -> Option<(f64, PhysicalPlan)> {
        let in_side = |cols: &[ColRef], side: Subset| {
            !cols.is_empty() && cols.iter().all(|c| side & (1 << c.occ.0) != 0)
        };
        // Every aggregate argument must live entirely in S; grouping
        // expressions must not straddle the partition.
        for na in aggregates {
            if let Some(arg) = na.func.argument() {
                if !in_side(&arg.columns(), s) {
                    return None;
                }
            }
        }
        for ne in group_by {
            let cols = ne.expr.columns();
            if !cols.is_empty() && !in_side(&cols, s) && !in_side(&cols, r) {
                return None;
            }
        }
        let gs = memo.get(&s)?;
        let gr = memo.get(&r)?;

        // The pre-aggregation grouping key: every S column needed by a
        // cross conjunct, plus the query's S-side grouping expressions.
        let join_cols: Vec<ColRef> = gs
            .layout
            .iter()
            .copied()
            .filter(|c| {
                info.expr
                    .conjuncts
                    .iter()
                    .zip(&info.conjunct_masks)
                    .any(|(conj, &m)| m & !s != 0 && conj.columns().contains(c))
            })
            .collect();
        let mut pre_gb: Vec<ScalarExpr> =
            join_cols.iter().map(|&c| ScalarExpr::Column(c)).collect();
        for ne in group_by {
            if in_side(&ne.expr.columns(), s) && !pre_gb.contains(&ne.expr) {
                pre_gb.push(ne.expr.clone());
            }
        }
        // Pre-aggregates: a count column plus one SUM per S-side argument.
        let mut pre_aggs: Vec<AggFunc> = vec![AggFunc::CountStar];
        let mut sum_of: HashMap<usize, usize> = HashMap::new(); // query agg idx -> pre agg idx
        for (i, na) in aggregates.iter().enumerate() {
            if let Some(arg) = na.func.argument() {
                sum_of.insert(i, pre_aggs.len());
                pre_aggs.push(AggFunc::Sum(arg.clone()));
            }
        }

        // The pre-aggregated block, as an SPJG expression in the subset's
        // dense occurrence space — this is what the view-matching rule is
        // invoked on.
        let (spj_block, _) = self.subset_block(info, s);
        let members = info.members(s);
        let occ_new: HashMap<OccId, OccId> = members
            .iter()
            .enumerate()
            .map(|(i, &o)| (o, OccId(i as u32)))
            .collect();
        let dense = |e: &ScalarExpr| {
            e.map_columns(&mut |c| ColRef {
                occ: occ_new[&c.occ],
                col: c.col,
            })
        };
        let pre_block = SpjgExpr {
            tables: spj_block.tables.clone(),
            conjuncts: spj_block.conjuncts.clone(),
            output: OutputList::Aggregate {
                group_by: pre_gb
                    .iter()
                    .enumerate()
                    .map(|(i, e)| NamedExpr::new(dense(e), format!("g{i}")))
                    .collect(),
                aggregates: pre_aggs
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        let func = match f {
                            AggFunc::CountStar => AggFunc::CountStar,
                            AggFunc::Sum(e) => AggFunc::Sum(dense(e)),
                            AggFunc::SumZero(e) => AggFunc::SumZero(dense(e)),
                        };
                        NamedAgg::new(func, format!("a{i}"))
                    })
                    .collect(),
            },
        };
        let pre_groups = card::estimate_rows(&pre_block, self.engine().catalog());

        // Physical pre-aggregation over the subset's best plan. A layout
        // miss here (like any other `None` in this function) withdraws the
        // alternative; the surviving plan is still invariant-checked in
        // debug builds.
        let pre_gb_phys: Vec<ScalarExpr> = pre_gb
            .iter()
            .map(|e| scalar_to_layout(e, &gs.layout).ok())
            .collect::<Option<_>>()?;
        let pre_agg_phys: Vec<AggFunc> = pre_aggs
            .iter()
            .map(|f| {
                Some(match f {
                    AggFunc::CountStar => AggFunc::CountStar,
                    AggFunc::Sum(e) => AggFunc::Sum(scalar_to_layout(e, &gs.layout).ok()?),
                    AggFunc::SumZero(e) => AggFunc::SumZero(scalar_to_layout(e, &gs.layout).ok()?),
                })
            })
            .collect::<Option<_>>()?;
        let mut pre_plan = PhysicalPlan::HashAggregate {
            input: Box::new(gs.plan.clone()),
            group_by: pre_gb_phys,
            aggregates: pre_agg_phys,
        };
        let mut pre_cost = gs.cost + self.config.cost.aggregate(gs.rows, pre_groups);

        // The view-matching rule on the pre-aggregated block (Example 4).
        if self.config.use_views {
            let subs = self.engine().find_substitutes(&pre_block);
            if self.config.produce_substitutes {
                for (_, sub) in subs {
                    stats.substitute_alternatives += 1;
                    let (plan, cost) = self.substitute_plan(&sub);
                    if cost < pre_cost {
                        pre_cost = cost;
                        pre_plan = plan;
                    }
                }
            }
        }

        // Pre-agg output layout: pre_gb columns, then cnt, then sums.
        let cnt_pos = pre_gb.len();
        let pre_width = pre_gb.len() + pre_aggs.len();
        // Position of an S-side column in the pre-agg output (must be one
        // of the grouping expressions).
        let pre_pos = |c: ColRef| -> Option<usize> {
            pre_gb.iter().position(|e| *e == ScalarExpr::Column(c))
        };

        // Join the pre-aggregate with R on the remaining conjuncts.
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        for (conj, &m) in info.expr.conjuncts.iter().zip(&info.conjunct_masks) {
            if m & !s == 0 || m & !r == 0 {
                continue; // applied inside one side
            }
            match conj {
                Conjunct::ColumnEq(x, y)
                    if (s & (1 << x.occ.0) != 0) != (s & (1 << y.occ.0) != 0) =>
                {
                    let (sc, rc) = if s & (1 << x.occ.0) != 0 {
                        (*x, *y)
                    } else {
                        (*y, *x)
                    };
                    left_keys.push(pre_pos(sc)?);
                    right_keys.push(pos_in(&gr.layout, rc).ok()?);
                }
                other => {
                    let mapped = other.to_bool().try_map_columns(&mut |c| {
                        let pos = if s & (1 << c.occ.0) != 0 {
                            pre_pos(c)?
                        } else {
                            pre_width + pos_in(&gr.layout, c).ok()?
                        };
                        Some(ColRef::new(0, pos as u32))
                    })?;
                    residual.push(mapped);
                }
            }
        }
        let residual = if residual.is_empty() {
            None
        } else {
            Some(BoolExpr::and(residual))
        };
        let join_rows = (final_rows.max(1.0) * 4.0).min(pre_groups * gr.rows);
        let (join, join_cost) = if left_keys.is_empty() {
            (
                PhysicalPlan::NestedLoopJoin {
                    left: Box::new(pre_plan),
                    right: Box::new(gr.plan.clone()),
                    predicate: residual,
                },
                self.config.cost.nested_loop(pre_groups, gr.rows),
            )
        } else {
            (
                PhysicalPlan::HashJoin {
                    left: Box::new(pre_plan),
                    right: Box::new(gr.plan.clone()),
                    left_keys,
                    right_keys,
                    residual,
                },
                self.config.cost.hash_join(pre_groups, gr.rows, join_rows),
            )
        };

        // Final aggregation: group by the query's grouping expressions,
        // rolling counts and sums up through the pre-aggregate.
        let map_mixed = |e: &ScalarExpr| -> Option<ScalarExpr> {
            e.try_map_columns(&mut |c| {
                let pos = if s & (1 << c.occ.0) != 0 {
                    pre_pos(c)?
                } else {
                    pre_width + pos_in(&gr.layout, c).ok()?
                };
                Some(ColRef::new(0, pos as u32))
            })
        };
        let mut final_gb = Vec::with_capacity(group_by.len());
        for ne in group_by {
            if in_side(&ne.expr.columns(), s) {
                // Must be one of the pre-aggregation grouping expressions.
                let pos = pre_gb.iter().position(|e| *e == ne.expr)?;
                final_gb.push(ScalarExpr::Column(ColRef::new(0, pos as u32)));
            } else {
                final_gb.push(map_mixed(&ne.expr)?);
            }
        }
        let cnt_col = ScalarExpr::Column(ColRef::new(0, cnt_pos as u32));
        let mut final_aggs = Vec::with_capacity(aggregates.len());
        for (i, na) in aggregates.iter().enumerate() {
            let func = match &na.func {
                AggFunc::CountStar => AggFunc::SumZero(cnt_col.clone()),
                AggFunc::Sum(_) => {
                    let pre = pre_gb.len() + sum_of[&i];
                    AggFunc::Sum(ScalarExpr::Column(ColRef::new(0, pre as u32)))
                }
                AggFunc::SumZero(_) => {
                    let pre = pre_gb.len() + sum_of[&i];
                    AggFunc::SumZero(ScalarExpr::Column(ColRef::new(0, pre as u32)))
                }
            };
            final_aggs.push(func);
        }
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(join),
            group_by: final_gb,
            aggregates: final_aggs,
        };
        let cost =
            pre_cost + gr.cost + join_cost + self.config.cost.aggregate(join_rows, final_rows);
        Some((cost, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::{CmpOp, ScalarExpr as S};
    use mv_plan::{NamedExpr, ViewDef};

    fn sample_view(secondary: Option<Vec<usize>>) -> mv_plan::ViewDef {
        let (_, t) = tpch_catalog();
        let expr = SpjgExpr::spj(
            vec![t.lineitem],
            BoolExpr::Literal(true),
            vec![
                NamedExpr::new(S::col(ColRef::new(0, 0)), "l_orderkey"),
                NamedExpr::new(S::col(ColRef::new(0, 4)), "l_quantity"),
                NamedExpr::new(S::col(ColRef::new(0, 10)), "l_shipdate"),
            ],
        );
        let mut v = ViewDef::new("v", expr).with_key(vec![0]);
        if let Some(idx) = secondary {
            v = v.with_secondary_index(idx);
        }
        v
    }

    fn eq_pred(pos: u32) -> BoolExpr {
        BoolExpr::cmp(S::col(ColRef::new(0, pos)), CmpOp::Eq, S::lit(5i64))
    }

    fn range_pred(pos: u32) -> BoolExpr {
        BoolExpr::cmp(S::col(ColRef::new(0, pos)), CmpOp::Lt, S::lit(5i64))
    }

    #[test]
    fn try_optimize_rejects_empty_queries() {
        let (cat, _) = tpch_catalog();
        let engine = MatchingEngine::new(cat, mv_core::MatchConfig::default());
        let opt = Optimizer::new(&engine, OptimizerConfig::default());
        let empty = SpjgExpr::spj(vec![], BoolExpr::Literal(true), vec![]);
        let err = opt.try_optimize(&empty).unwrap_err();
        assert_eq!(err.rule, "MV017");
        assert!(err.to_string().contains("at least one table"), "{err}");
    }

    #[test]
    fn constraint_strength_classifies_predicates() {
        let preds = vec![eq_pred(0), range_pred(1)];
        assert_eq!(constraint_strength(&preds, 0), 2);
        assert_eq!(constraint_strength(&preds, 1), 1);
        assert_eq!(constraint_strength(&preds, 2), 0);
        // Column-to-column comparisons do not qualify as seek keys.
        let preds = vec![BoolExpr::col_eq(ColRef::new(0, 0), ColRef::new(0, 1))];
        assert_eq!(constraint_strength(&preds, 0), 0);
    }

    #[test]
    fn index_seek_factor_prefers_matching_indexes() {
        // Equality on the clustered key: strong seek.
        let v = sample_view(None);
        let f = index_seek_factor(&v, &[eq_pred(0)]);
        assert!(f < 0.1, "{f}");
        // Range on the key: partial seek.
        let f = index_seek_factor(&v, &[range_pred(0)]);
        assert!((0.2..=0.5).contains(&f), "{f}");
        // Predicate on a non-indexed column: full scan.
        let f = index_seek_factor(&v, &[eq_pred(1)]);
        assert_eq!(f, 1.0);
        // ... unless a secondary index covers it.
        let v = sample_view(Some(vec![1, 2]));
        let f = index_seek_factor(&v, &[eq_pred(1)]);
        assert!(f < 0.1, "{f}");
        // Multi-column prefix: eq on both columns compounds.
        let f2 = index_seek_factor(&v, &[eq_pred(1), eq_pred(2)]);
        assert!(f2 < f, "{f2} < {f}");
        // No predicates: full scan.
        assert_eq!(index_seek_factor(&v, &[]), 1.0);
    }
}
