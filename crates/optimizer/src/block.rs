//! Analysis of a query block for the memo: conjunct coverage, join-graph
//! connectivity, and the required output columns of every table subset.

use mv_expr::{ColRef, OccId};
use mv_plan::{OutputList, SpjgExpr};

/// A subset of table occurrences as a bitmask (bit `i` = occurrence `i`).
pub type Subset = u64;

/// Precomputed per-block analysis shared by the optimizer's groups.
#[derive(Debug)]
pub struct BlockInfo<'a> {
    /// The query block.
    pub expr: &'a SpjgExpr,
    /// Occurrence bitmask of each conjunct.
    pub conjunct_masks: Vec<Subset>,
    /// Columns referenced by the block's output (projection or grouping
    /// plus aggregate arguments).
    pub output_columns: Vec<ColRef>,
    /// The full set of occurrences.
    pub all: Subset,
}

/// Bitmask of the occurrences referenced by a set of columns.
fn mask_of(cols: &[ColRef]) -> Subset {
    cols.iter().fold(0, |m, c| m | (1 << c.occ.0))
}

impl<'a> BlockInfo<'a> {
    /// Analyze a block.
    pub fn new(expr: &'a SpjgExpr) -> Self {
        let conjunct_masks = expr
            .conjuncts
            .iter()
            .map(|c| mask_of(&c.columns()))
            .collect();
        let mut output_columns = Vec::new();
        match &expr.output {
            OutputList::Spj(items) => {
                for ne in items {
                    ne.expr.collect_columns(&mut output_columns);
                }
            }
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => {
                for ne in group_by {
                    ne.expr.collect_columns(&mut output_columns);
                }
                for na in aggregates {
                    if let Some(arg) = na.func.argument() {
                        arg.collect_columns(&mut output_columns);
                    }
                }
            }
        }
        output_columns.sort();
        output_columns.dedup();
        let all = if expr.tables.is_empty() {
            0
        } else {
            (1u64 << expr.tables.len()) - 1
        };
        BlockInfo {
            expr,
            conjunct_masks,
            output_columns,
            all,
        }
    }

    /// Occurrences in a subset, ascending.
    pub fn members(&self, s: Subset) -> Vec<OccId> {
        (0..self.expr.tables.len() as u32)
            .filter(|i| s & (1 << i) != 0)
            .map(OccId)
            .collect()
    }

    /// Conjunct indices fully covered by `s` (every referenced occurrence
    /// inside the subset). A conjunct with no columns (constant) has mask 0
    /// and is covered by every subset.
    pub fn covered(&self, s: Subset) -> Vec<usize> {
        self.conjunct_masks
            .iter()
            .enumerate()
            .filter(|(_, &m)| m & !s == 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Conjunct indices covered by `s` but by neither `a` nor `b` — the
    /// predicates applied when joining `a` and `b` into `s = a | b`.
    pub fn newly_covered(&self, a: Subset, b: Subset) -> Vec<usize> {
        let s = a | b;
        self.conjunct_masks
            .iter()
            .enumerate()
            .filter(|(_, &m)| m & !s == 0 && (m & !a != 0) && (m & !b != 0))
            .map(|(i, _)| i)
            .collect()
    }

    /// Is the subset connected in the join graph (occurrences linked by
    /// conjuncts)? Singletons are connected; a cross join is not, so the
    /// memo never enumerates cartesian intermediates unless the whole
    /// query is a cross product.
    pub fn connected(&self, s: Subset) -> bool {
        let members = self.members(s);
        if members.len() <= 1 {
            return s != 0;
        }
        let mut reached: Subset = 1 << members[0].0;
        loop {
            let mut grew = false;
            for &m in &self.conjunct_masks {
                if m & s != m || m == 0 {
                    continue; // conjunct leaves the subset (or is constant)
                }
                if m & reached != 0 && m & !reached != 0 {
                    reached |= m;
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        reached & s == s
    }

    /// The *required* columns of a subset: every column of an occurrence in
    /// `s` that is referenced either by a conjunct not yet fully covered by
    /// `s` (it will be applied higher up) or by the block's output.
    /// Returned in canonical (sorted) order — this is the output layout of
    /// the subset's memo group.
    pub fn required_columns(&self, s: Subset) -> Vec<ColRef> {
        let mut out: Vec<ColRef> = Vec::new();
        for (conj, &m) in self.expr.conjuncts.iter().zip(&self.conjunct_masks) {
            if m & !s != 0 {
                for c in conj.columns() {
                    if s & (1 << c.occ.0) != 0 {
                        out.push(c);
                    }
                }
            }
        }
        for &c in &self.output_columns {
            if s & (1 << c.occ.0) != 0 {
                out.push(c);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// All connected subsets, ordered by size (singletons first). The
    /// block sizes the paper works with (≤ 7 tables) keep this tiny.
    pub fn connected_subsets(&self) -> Vec<Subset> {
        let n = self.expr.tables.len();
        let mut subsets: Vec<Subset> = (1..(1u64 << n)).filter(|&s| self.connected(s)).collect();
        subsets.sort_by_key(|s| s.count_ones());
        subsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::{BoolExpr, CmpOp, ScalarExpr as S};
    use mv_plan::NamedExpr;

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    /// lineitem(0) ⋈ orders(1) ⋈ customer(2) chain.
    fn chain_block() -> SpjgExpr {
        let (_, t) = tpch_catalog();
        let pred = BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::col_eq(cr(1, 1), cr(2, 0)),
            BoolExpr::cmp(S::col(cr(2, 5)), CmpOp::Gt, S::lit(0i64)),
        ]);
        SpjgExpr::spj(
            vec![t.lineitem, t.orders, t.customer],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 4)), "l_quantity")],
        )
    }

    #[test]
    fn connectivity_follows_join_graph() {
        let block = chain_block();
        let info = BlockInfo::new(&block);
        assert!(info.connected(0b001));
        assert!(info.connected(0b011)); // lineitem-orders
        assert!(info.connected(0b110)); // orders-customer
        assert!(!info.connected(0b101)); // lineitem-customer: no direct edge
        assert!(info.connected(0b111));
        assert!(!info.connected(0));
        // Connected subsets: 3 singletons + 2 pairs + 1 triple.
        assert_eq!(info.connected_subsets().len(), 6);
    }

    #[test]
    fn conjunct_coverage() {
        let block = chain_block();
        let info = BlockInfo::new(&block);
        // Joining {lineitem} with {orders} covers the first equijoin only.
        assert_eq!(info.newly_covered(0b001, 0b010), vec![0]);
        // Joining {lineitem, orders} with {customer} covers the second.
        assert_eq!(info.newly_covered(0b011, 0b100), vec![1]);
        // The single-table range on customer is covered by {customer}.
        assert!(info.covered(0b100).contains(&2));
    }

    #[test]
    fn required_columns_shrink_at_the_top() {
        let block = chain_block();
        let info = BlockInfo::new(&block);
        // {lineitem} must keep the join column and the output column.
        assert_eq!(info.required_columns(0b001), vec![cr(0, 0), cr(0, 4)]);
        // {lineitem, orders} still owes o_custkey to the customer join.
        let req = info.required_columns(0b011);
        assert!(req.contains(&cr(1, 1)));
        assert!(req.contains(&cr(0, 4)));
        assert!(!req.contains(&cr(0, 0)), "l_orderkey applied inside");
        // At the top only the output column remains.
        assert_eq!(info.required_columns(0b111), vec![cr(0, 4)]);
    }

    #[test]
    fn aggregate_arguments_are_output_columns() {
        let (_, t) = tpch_catalog();
        use mv_plan::{AggFunc, NamedAgg};
        let block = SpjgExpr::aggregate(
            vec![t.lineitem, t.orders],
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::Sum(S::col(cr(0, 5))), "total")],
        );
        let info = BlockInfo::new(&block);
        assert!(info.output_columns.contains(&cr(0, 5)));
        assert!(info.output_columns.contains(&cr(1, 1)));
        assert!(info.required_columns(0b01).contains(&cr(0, 5)));
    }
}
