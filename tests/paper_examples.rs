//! The paper's worked examples, end to end: SQL text → parser → matcher →
//! executor, with results verified against direct evaluation.

use matview::plan::display::sql_of_substitute;
use matview::prelude::*;

fn setup() -> (Database, MatchingEngine) {
    let (db, _) = generate_tpch(&TpchScale::small(), 2001);
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    (db, engine)
}

/// Example 1: the indexed view v1 can be created and materialized.
#[test]
fn example1_create_and_materialize() {
    let (db, engine) = setup();
    let view = parse_view(
        "create view v1 with schemabinding as \
         select p_partkey, p_name, p_retailprice, count_big(*) as cnt, \
                sum(l_extendedprice * l_quantity) as gross_revenue \
         from dbo.lineitem, dbo.part \
         where p_partkey < 1000 and p_name like '%steel%' and p_partkey = l_partkey \
         group by p_partkey, p_name, p_retailprice",
        &db.catalog,
    )
    .unwrap();
    // "create unique clustered index v1_cidx on v1(p_partkey)" — the key
    // defaults to the grouping columns; narrow it to p_partkey, which the
    // grouping columns functionally determine.
    let view = view.with_key(vec![0]).with_secondary_index(vec![4, 1]);
    let rows = materialize_view(&db, &view);
    engine.add_view(view).unwrap();
    assert!(!rows.is_empty(), "steel parts exist in the generated data");
    // Every group's count is positive and the key is unique.
    let mut keys = std::collections::HashSet::new();
    for r in &rows {
        assert!(keys.insert(r[0].clone()), "clustered key must be unique");
        assert!(matches!(r[3], Value::Int(c) if c > 0));
    }
}

/// Example 2: the full subsumption-test walkthrough, via SQL.
#[test]
fn example2_subsumption_and_compensation() {
    let (db, engine) = setup();
    let view = parse_view(
        "create view v2 with schemabinding as \
         select l_orderkey, l_partkey, o_custkey, o_orderdate, l_shipdate, \
                l_quantity, l_extendedprice \
         from dbo.lineitem, dbo.orders, dbo.part \
         where l_orderkey = o_orderkey and l_partkey = p_partkey \
           and p_partkey > 150 and o_custkey > 50 and o_custkey < 500 \
           and p_name like '%abc%'",
        &db.catalog,
    )
    .unwrap();
    let rows = materialize_view(&db, &view);
    let vid = engine.add_view(view).unwrap();
    let query = parse_query(
        "select l_orderkey, l_partkey \
         from lineitem, orders, part \
         where l_orderkey = o_orderkey and l_partkey = p_partkey \
           and o_orderdate = l_shipdate \
           and p_partkey > 150 and l_partkey < 160 and o_custkey = 123 \
           and p_name like '%abc%' \
           and l_quantity * l_extendedprice > 100",
        &db.catalog,
    )
    .unwrap();
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1, "Example 2 matches");
    assert_eq!(subs[0].0, vid);
    let sub = &subs[0].1;
    // Four compensating predicates, as derived in the paper.
    assert_eq!(sub.predicates.len(), 4);
    let rendered = sql_of_substitute(sub, &engine.views());
    assert!(rendered.contains("l_partkey < 160") || rendered.contains("p_partkey < 160"));
    assert!(rendered.contains("o_custkey = 123"));
    // Execution equivalence (vacuously true if no row matches '%abc%';
    // the test still exercises the full path).
    let direct = execute_spjg(&db, &query);
    let rewritten = execute_substitute(&rows, sub);
    assert!(bag_eq(&direct, &rewritten));
}

/// Example 3: extra tables eliminated through cardinality-preserving
/// joins; the view as given is rejected only because it fails to output
/// the dates needed by a compensating predicate.
#[test]
fn example3_extra_tables() {
    let (db, engine) = setup();
    let v3 = parse_view(
        "create view v3 with schemabinding as \
         select c_custkey, c_name, l_orderkey, l_partkey, l_quantity \
         from dbo.lineitem, dbo.orders, dbo.customer \
         where l_orderkey = o_orderkey and o_custkey = c_custkey \
           and o_orderkey >= 500",
        &db.catalog,
    )
    .unwrap();
    engine.add_view(v3).unwrap();
    let query = parse_query(
        "select l_orderkey, l_partkey, l_quantity from lineitem \
         where l_orderkey between 1000 and 1500 and l_shipdate = l_commitdate",
        &db.catalog,
    )
    .unwrap();
    assert!(
        engine.find_substitutes(&query).is_empty(),
        "v3 lacks the date columns for the compensating predicate"
    );

    // With the dates added to the output list, the match goes through and
    // produces correct results.
    let v3b = parse_view(
        "create view v3b with schemabinding as \
         select c_custkey, c_name, l_orderkey, l_partkey, l_quantity, \
                l_shipdate, l_commitdate \
         from dbo.lineitem, dbo.orders, dbo.customer \
         where l_orderkey = o_orderkey and o_custkey = c_custkey \
           and o_orderkey >= 500",
        &db.catalog,
    )
    .unwrap();
    let rows = materialize_view(&db, &v3b);
    let vid = engine.add_view(v3b).unwrap();
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    assert_eq!(subs[0].0, vid);
    let direct = execute_spjg(&db, &query);
    let rewritten = execute_substitute(&rows, &subs[0].1);
    assert!(bag_eq(&direct, &rewritten));
    assert!(!direct.is_empty(), "the window [1000, 1500] holds orders");
}

/// Example 4: the optimizer's pre-aggregation exposes v4 for the
/// revenue-per-nation query; the final plan uses the view and is correct.
#[test]
fn example4_preaggregation() {
    let (db, engine) = setup();
    let v4 = parse_view(
        "create view v4 with schemabinding as \
         select o_custkey, count_big(*) as cnt, \
                sum(l_quantity * l_extendedprice) as revenue \
         from dbo.lineitem, dbo.orders \
         where l_orderkey = o_orderkey \
         group by o_custkey",
        &db.catalog,
    )
    .unwrap();
    let rows = materialize_view(&db, &v4);
    let vid = engine.add_view(v4).unwrap();
    let mut store = ViewStore::new();
    store.put(vid, rows);

    let query = parse_query(
        "select c_nationkey, sum(l_quantity * l_extendedprice) as revenue \
         from lineitem, orders, customer \
         where l_orderkey = o_orderkey and o_custkey = c_custkey \
         group by c_nationkey",
        &db.catalog,
    )
    .unwrap();
    // Direct matching of the whole query fails (the view satisfies none of
    // the section 3.3 conditions for it) ...
    assert!(engine.find_substitutes(&query).is_empty());
    // ... but "this is a case where integration with the optimizer helps":
    // the pre-aggregation alternative matches v4.
    let optimizer = Optimizer::new(&engine, OptimizerConfig::default());
    let optimized = optimizer.optimize(&query);
    assert!(optimized.plan.uses_view(), "plan:\n{}", optimized.plan);
    let got = execute_plan(&db, &store, &optimized.plan);
    let want = execute_spjg(&db, &query);
    assert!(bag_eq(&got, &want));
}

/// Example 5 (the section 3.2 extension): a nullable foreign key is
/// acceptable when the query carries a null-rejecting predicate.
#[test]
fn example5_null_rejecting_extension() {
    use matview::catalog::schema::{ForeignKey, TableBuilder};
    use matview::catalog::{Catalog, ColumnId, ColumnType};
    use matview::expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
    use matview::plan::NamedExpr;

    let mut cat = Catalog::new();
    let t = cat.add_table(
        TableBuilder::new("t")
            .col("a", ColumnType::Int)
            .nullable_col("f", ColumnType::Int)
            .primary_key(&["a"])
            .build(),
    );
    let s = cat.add_table(
        TableBuilder::new("s")
            .col("k", ColumnType::Int)
            .primary_key(&["k"])
            .build(),
    );
    cat.add_foreign_key(ForeignKey {
        name: "t_f".into(),
        from_table: t,
        from_columns: vec![ColumnId(1)],
        to_table: s,
        to_columns: vec![ColumnId(0)],
    });
    let view = SpjgExpr::spj(
        vec![t, s],
        BoolExpr::col_eq(ColRef::new(0, 1), ColRef::new(1, 0)),
        vec![
            NamedExpr::new(S::col(ColRef::new(0, 0)), "a"),
            NamedExpr::new(S::col(ColRef::new(0, 1)), "f"),
        ],
    );
    let query = SpjgExpr::spj(
        vec![t],
        BoolExpr::cmp(S::col(ColRef::new(0, 1)), CmpOp::Gt, S::lit(50i64)),
        vec![NamedExpr::new(S::col(ColRef::new(0, 0)), "a")],
    );

    // Data where the distinction matters: a row with NULL f.
    let mut db = Database::new(cat.clone());
    db.load(s, (1..=100).map(|k| vec![Value::Int(k)]).collect());
    db.load(
        t,
        vec![
            vec![Value::Int(1), Value::Int(60)],
            vec![Value::Int(2), Value::Null],
            vec![Value::Int(3), Value::Int(40)],
            vec![Value::Int(4), Value::Int(99)],
        ],
    );

    // Strict engine: rejected.
    let strict = MatchingEngine::new(cat.clone(), MatchConfig::default());
    let vid = strict.add_view(ViewDef::new("v", view.clone())).unwrap();
    assert!(strict.find_substitutes(&query).is_empty());
    let _ = vid;

    // Extended engine: accepted, and the rewrite is exact because the
    // query's f > 50 discards the NULL row anyway.
    let extended = MatchingEngine::new(
        cat,
        MatchConfig {
            null_rejecting_fk: true,
            ..MatchConfig::default()
        },
    );
    let view_def = ViewDef::new("v", view);
    let rows = materialize_view(&db, &view_def);
    extended.add_view(view_def).unwrap();
    let subs = extended.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    let direct = execute_spjg(&db, &query);
    let rewritten = execute_substitute(&rows, &subs[0].1);
    assert!(bag_eq(&direct, &rewritten));
    assert_eq!(direct.len(), 2); // a=1 (f=60) and a=4 (f=99)
}

/// Example 6 (section 4.2.3): output-column availability through
/// equivalence classes.
#[test]
fn example6_output_column_rerouting() {
    let (db, engine) = setup();
    // View outputs o_orderkey but not l_orderkey; equivalent via the join.
    let view = parse_view(
        "create view v6 with schemabinding as \
         select o_orderkey, l_partkey, l_quantity \
         from dbo.lineitem, dbo.orders where l_orderkey = o_orderkey",
        &db.catalog,
    )
    .unwrap();
    let rows = materialize_view(&db, &view);
    engine.add_view(view).unwrap();
    let query = parse_query(
        "select l_orderkey, l_quantity from lineitem, orders \
         where l_orderkey = o_orderkey",
        &db.catalog,
    )
    .unwrap();
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    let direct = execute_spjg(&db, &query);
    let rewritten = execute_substitute(&rows, &subs[0].1);
    assert!(bag_eq(&direct, &rewritten));
}
