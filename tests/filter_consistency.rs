//! Filter-tree consistency: on the paper's workload, the filter tree must
//! never drop a view that the full tests would accept — enabling it only
//! changes speed, not results.
//!
//! (The known, paper-faithful exception — the conservative textual
//! output-expression condition of section 4.2.7, which ignores
//! recomputation from plain columns — cannot trigger on this workload
//! because generated outputs are always simple columns; a dedicated test
//! below pins the exception itself.)

use matview::prelude::*;

#[test]
fn filter_tree_is_lossless_on_generated_workload() {
    let (db, _) = generate_tpch(&TpchScale::tiny(), 8);
    let views = Generator::new(&db.catalog, WorkloadParams::views(), 51).views(120);
    let queries = Generator::new(&db.catalog, WorkloadParams::queries(), 52).queries(60);

    let with_tree = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    let without = MatchingEngine::new(
        db.catalog.clone(),
        MatchConfig {
            use_filter_tree: false,
            ..MatchConfig::default()
        },
    );
    for v in views {
        with_tree.add_view(v.clone()).unwrap();
        without.add_view(v).unwrap();
    }
    for q in &queries {
        let mut a: Vec<ViewId> = with_tree
            .find_substitutes(q)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let mut b: Vec<ViewId> = without
            .find_substitutes(q)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "filter tree changed the result set for {q:#?}");
    }
    // And it actually prunes.
    let stats = with_tree.stats();
    assert!(
        stats.candidate_fraction() < 0.2,
        "filter tree should prune most views, fraction = {}",
        stats.candidate_fraction()
    );
}

/// The paper-faithful divergence: a query output expression that is only
/// *recomputable* from view columns is pruned by the strict textual
/// condition (section 4.2.7 calls its condition "conservative"), while the
/// full matcher accepts it when the filter is bypassed. The lenient filter
/// keeps it.
#[test]
fn strict_expression_filter_prunes_recomputable_expressions() {
    use matview::expr::{BinOp, BoolExpr, ScalarExpr as S};
    use matview::plan::NamedExpr;

    let (db, _) = generate_tpch(&TpchScale::tiny(), 8);
    let (_, t) = matview::catalog::tpch::tpch_catalog();
    let cr = |o: u32, c: u32| matview::expr::ColRef::new(o, c);

    let view = ViewDef::new(
        "cols_only",
        SpjgExpr::spj(
            vec![t.lineitem],
            BoolExpr::Literal(true),
            vec![
                NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
                NamedExpr::new(S::col(cr(0, 5)), "l_extendedprice"),
            ],
        ),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(
            S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5))),
            "gross",
        )],
    );

    // Strict (paper) filter: pruned before the full tests.
    let strict = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    strict.add_view(view.clone()).unwrap();
    assert!(strict.find_substitutes(&query).is_empty());
    // Direct matching (no filter) accepts via recomputation.
    assert!(strict.match_one(&query, ViewId(0)).is_some());

    // Lenient filter: accepted end to end.
    let lenient = MatchingEngine::new(
        db.catalog.clone(),
        MatchConfig {
            strict_expression_filter: false,
            ..MatchConfig::default()
        },
    );
    lenient.add_view(view).unwrap();
    assert_eq!(lenient.find_substitutes(&query).len(), 1);
}
