//! SQL round-trip and full-pipeline tests: parse → plan → render → parse
//! again, and parse → optimize → execute against the oracle.

use matview::plan::display::sql_of;
use matview::prelude::*;

#[test]
fn rendered_sql_reparses_to_the_same_block() {
    let (db, _) = generate_tpch(&TpchScale::tiny(), 4);
    // Generator-produced expressions cover joins, ranges and aggregation.
    let exprs = Generator::new(&db.catalog, WorkloadParams::views(), 71).queries(60);
    for e in &exprs {
        let sql = sql_of(e, &db.catalog);
        let reparsed = parse_query(&sql, &db.catalog)
            .unwrap_or_else(|err| panic!("rendered SQL failed to parse: {err}\n{sql}"));
        assert_eq!(&reparsed, e, "round-trip changed the block:\n{sql}");
    }
}

#[test]
fn handwritten_sql_through_the_whole_stack() {
    let (db, _) = generate_tpch(&TpchScale::small(), 12);
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    let optimizer = Optimizer::new(&engine, OptimizerConfig::default());
    let store = ViewStore::new();
    let queries = [
        "select n_name, r_name from nation, region where n_regionkey = r_regionkey",
        "select c_custkey, c_name from customer where c_acctbal > 0 and c_mktsegment = 'BUILDING'",
        "select o_orderpriority, count_big(*) as cnt from orders \
         where o_orderdate >= DATE '1995-01-01' and o_orderdate < DATE '1996-01-01' \
         group by o_orderpriority",
        "select l_returnflag, l_linestatus, count_big(*) as cnt, sum(l_quantity) as qty, \
                sum(l_extendedprice) as price \
         from lineitem where l_shipdate <= DATE '1998-08-01' \
         group by l_returnflag, l_linestatus",
        "select s_name, n_name from supplier, nation \
         where s_nationkey = n_nationkey and s_acctbal >= 500000",
        "select l_orderkey, o_orderdate, o_totalprice \
         from lineitem, orders where l_orderkey = o_orderkey \
           and o_totalprice > 5000000 and l_shipmode = 'AIR'",
    ];
    for sql in queries {
        let q = parse_query(sql, &db.catalog).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let optimized = optimizer.optimize(&q);
        let got = execute_plan(&db, &store, &optimized.plan);
        let want = execute_spjg(&db, &q);
        assert!(
            matview::exec::bag_diff(&got, &want).is_none(),
            "wrong result for {sql}\nplan:\n{}",
            optimized.plan
        );
    }
}

#[test]
fn tpch_q1_shape_runs() {
    // TPC-H Q1 restricted to the supported class (no AVG, no ORDER BY).
    let (db, _) = generate_tpch(&TpchScale::small(), 13);
    let q = parse_query(
        "select l_returnflag, l_linestatus, \
                sum(l_quantity) as sum_qty, \
                sum(l_extendedprice) as sum_base_price, \
                count_big(*) as count_order \
         from lineitem \
         where l_shipdate <= DATE '1998-09-02' \
         group by l_returnflag, l_linestatus",
        &db.catalog,
    )
    .unwrap();
    let rows = execute_spjg(&db, &q);
    assert!(!rows.is_empty() && rows.len() <= 6, "R/A/N × O/F groups");
    // Sanity: total count equals the filtered lineitem count.
    let total: i64 = rows
        .iter()
        .map(|r| match r[4] {
            Value::Int(c) => c,
            _ => 0,
        })
        .sum();
    assert!(total > 0);
}
