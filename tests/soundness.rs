//! The central soundness property of the reproduction, checked with
//! property-based testing:
//!
//! > Whenever the matcher says a query can be computed from a view, then
//! > executing the substitute against the materialized view returns
//! > exactly the same bag of rows as executing the query against base
//! > tables.
//!
//! Views and queries come from the section 5 random generator, so the
//! property is exercised across joins, extra-table elimination, range and
//! residual compensation, and aggregation roll-ups.

use matview::prelude::*;
use proptest::prelude::*;

/// Run one soundness round: generate views and queries from the given
/// seeds, match every pair the engine proposes, and execute both sides.
/// Returns the number of substitutes verified.
fn soundness_round(
    view_seed: u64,
    query_seed: u64,
    data_seed: u64,
    n_views: usize,
    n_queries: usize,
) -> usize {
    soundness_round_cfg(
        view_seed,
        query_seed,
        data_seed,
        n_views,
        n_queries,
        MatchConfig::default(),
    )
}

fn soundness_round_cfg(
    view_seed: u64,
    query_seed: u64,
    data_seed: u64,
    n_views: usize,
    n_queries: usize,
    config: MatchConfig,
) -> usize {
    let (db, _) = generate_tpch(&TpchScale::tiny(), data_seed);
    let engine = MatchingEngine::new(db.catalog.clone(), config);
    let views = Generator::new(&db.catalog, WorkloadParams::views(), view_seed).views(n_views);
    let mut materialized = Vec::new();
    for v in views {
        let rows = materialize_view(&db, &v);
        let id = engine.add_view(v).unwrap();
        materialized.push((id, rows));
    }
    let queries =
        Generator::new(&db.catalog, WorkloadParams::queries(), query_seed).queries(n_queries);
    let mut verified = 0;
    for q in &queries {
        let direct = execute_spjg(&db, q);
        for (vid, sub) in engine.find_substitutes(q) {
            let rows = &materialized.iter().find(|(id, _)| *id == vid).unwrap().1;
            let rewritten = matview::exec::execute_substitute_with(&db, rows, &sub);
            if let Some(diff) = matview::exec::bag_diff(&direct, &rewritten) {
                panic!(
                    "UNSOUND substitute (view {vid:?}, seeds {view_seed}/{query_seed}/{data_seed}):\n\
                     {diff}\nquery: {q:#?}\nsubstitute: {sub:#?}"
                );
            }
            verified += 1;
        }
    }
    verified
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn substitutes_are_always_sound(
        view_seed in 0u64..1_000_000,
        query_seed in 0u64..1_000_000,
        data_seed in 0u64..1_000,
    ) {
        soundness_round(view_seed, query_seed, data_seed, 30, 25);
    }
}

/// A deterministic heavier round so plain `cargo test` always verifies a
/// meaningful number of substitutes even if proptest happens to draw
/// workloads with few matches.
#[test]
fn soundness_smoke_many_matches() {
    let mut total = 0;
    for round in 0..4u64 {
        total += soundness_round(1000 + round, 2000 + round, 17, 120, 60);
    }
    assert!(
        total >= 5,
        "expected several substitutes across rounds, got {total}"
    );
}

/// The backjoin extension must preserve the soundness property. Skinny
/// view outputs force the matcher through the backjoin path often.
#[test]
fn backjoin_substitutes_are_sound() {
    let config = MatchConfig {
        allow_backjoins: true,
        ..MatchConfig::default()
    };
    let mut total = 0;
    for round in 0..4u64 {
        total += soundness_round_cfg(3000 + round, 4000 + round, 19, 120, 60, config.clone());
    }
    // Backjoins strictly widen the match set, so this must find at least
    // as many substitutes as the strict smoke rounds.
    assert!(total >= 5, "got {total}");
}

/// Backjoins only ever add matches, never remove them.
#[test]
fn backjoins_widen_the_match_set() {
    let (db, _) = generate_tpch(&TpchScale::tiny(), 23);
    let views = Generator::new(&db.catalog, WorkloadParams::views(), 81).views(100);
    let queries = Generator::new(&db.catalog, WorkloadParams::queries(), 82).queries(50);
    let strict = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    let extended = MatchingEngine::new(
        db.catalog.clone(),
        MatchConfig {
            allow_backjoins: true,
            ..MatchConfig::default()
        },
    );
    for v in views {
        strict.add_view(v.clone()).unwrap();
        extended.add_view(v).unwrap();
    }
    let mut extra = 0usize;
    for q in &queries {
        let a: std::collections::HashSet<ViewId> = strict
            .find_substitutes(q)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let b: std::collections::HashSet<ViewId> = extended
            .find_substitutes(q)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        assert!(a.is_subset(&b), "backjoins removed a match for {q:#?}");
        extra += b.len() - a.len();
    }
    println!("extra matches from backjoins: {extra}");
}

/// Optimizer-level soundness: whatever plan wins (views, pre-aggregation,
/// plain joins), executing it equals direct evaluation.
#[test]
fn optimized_plans_are_sound_over_random_workload() {
    let (db, _) = generate_tpch(&TpchScale::tiny(), 5);
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    let mut store = ViewStore::new();
    for v in Generator::new(&db.catalog, WorkloadParams::views(), 31).views(40) {
        let rows = materialize_view(&db, &v);
        let id = engine.add_view(v).unwrap();
        store.put(id, rows);
    }
    let optimizer = Optimizer::new(&engine, OptimizerConfig::default());
    let queries = Generator::new(&db.catalog, WorkloadParams::queries(), 32).queries(40);
    let mut used_views = 0;
    for q in &queries {
        let optimized = optimizer.optimize(q);
        let got = execute_plan(&db, &store, &optimized.plan);
        let want = execute_spjg(&db, q);
        if let Some(diff) = matview::exec::bag_diff(&got, &want) {
            panic!(
                "optimizer produced a wrong plan: {diff}\nplan:\n{}",
                optimized.plan
            );
        }
        used_views += optimized.plan.uses_view() as usize;
    }
    // Not an assertion about exact counts — just confirm the whole
    // pipeline is live.
    println!("plans using views: {used_views}/40");
}
