//! # matview — view matching for materialized views
//!
//! A from-scratch Rust reproduction of Goldstein & Larson, *"Optimizing
//! Queries Using Materialized Views: A Practical, Scalable Solution"*
//! (SIGMOD 2001): the SPJG view-matching algorithm, the filter-tree index
//! over view definitions, and their integration into a cost-based,
//! transformation-style query optimizer — plus everything needed to run
//! and validate them end to end (a SQL front end, a TPC-H style data
//! generator, an in-memory executor, and the paper's randomized workload
//! generator).
//!
//! ## Quick start
//!
//! ```
//! use matview::prelude::*;
//!
//! // Schema + data + statistics.
//! let (db, _) = generate_tpch(&TpchScale::tiny(), 42);
//!
//! // Register a materialized view.
//! let mut engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
//! let view = parse_view(
//!     "CREATE VIEW small_parts WITH SCHEMABINDING AS \
//!      SELECT p_partkey, p_size FROM dbo.part WHERE p_size < 40",
//!     &db.catalog,
//! )
//! .unwrap();
//! let view_rows = materialize_view(&db, &view);
//! let view_id = engine.add_view(view).unwrap();
//!
//! // Ask the matcher to rewrite a query.
//! let query = parse_query(
//!     "SELECT p_partkey FROM part WHERE p_size < 20",
//!     &db.catalog,
//! )
//! .unwrap();
//! let substitutes = engine.find_substitutes(&query);
//! assert_eq!(substitutes.len(), 1);
//!
//! // The rewrite returns exactly the original query's rows.
//! let from_view = execute_substitute(&view_rows, &substitutes[0].1);
//! let direct = execute_spjg(&db, &query);
//! assert!(bag_eq(&from_view, &direct));
//! # let _ = view_id;
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`catalog`] | `mv-catalog` | schema, constraints, statistics, TPC-H |
//! | [`expr`] | `mv-expr` | scalar/boolean expressions, CNF, intervals, equivalence classes |
//! | [`plan`] | `mv-plan` | SPJG blocks, views, substitutes, physical plans, cardinality |
//! | [`sql`] | `mv-sql` | parser + binder for the indexed-view SQL subset |
//! | [`core`] | `mv-core` | **the paper**: matching tests, compensations, lattice index, filter tree |
//! | [`optimizer`] | `mv-optimizer` | memo optimizer with the view-matching rule and pre-aggregation |
//! | [`exec`] | `mv-exec` | row executor: oracle, substitutes, physical plans |
//! | [`data`] | `mv-data` | deterministic TPC-H style data generator |
//! | [`workload`] | `mv-workload` | the section 5 random view/query generator |
//! | [`verify`] | `mv-verify` | independent static soundness analyzer + diagnostics |

pub use mv_catalog as catalog;
pub use mv_core as core;
pub use mv_data as data;
pub use mv_exec as exec;
pub use mv_expr as expr;
pub use mv_optimizer as optimizer;
pub use mv_plan as plan;
pub use mv_sql as sql;
pub use mv_verify as verify;
pub use mv_workload as workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mv_catalog::tpch::tpch_catalog;
    pub use mv_catalog::{Catalog, ColumnType, TableId, Value};
    pub use mv_core::{MatchConfig, MatchingEngine};
    pub use mv_data::{generate_tpch, Database, TpchScale};
    pub use mv_exec::{
        bag_eq, execute_plan, execute_spjg, execute_substitute, materialize_view, ViewStore,
    };
    pub use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr};
    pub use mv_optimizer::{Optimizer, OptimizerConfig};
    pub use mv_plan::{
        AggFunc, NamedAgg, NamedExpr, OutputList, PhysicalPlan, SpjgExpr, Substitute, ViewDef,
        ViewId,
    };
    pub use mv_sql::{parse_query, parse_statement, parse_view};
    pub use mv_workload::{Generator, WorkloadParams};
}
