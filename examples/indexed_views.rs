//! A TPC-H reporting workload accelerated by indexed views — the paper's
//! motivating scenario ("massive improvements in query processing time,
//! especially for aggregation queries over large tables").
//!
//! Defines summary views, then runs a set of analytical queries through
//! the cost-based optimizer twice (views disabled / enabled) and compares
//! both the plans and the measured execution times. Every rewritten plan
//! is checked for bag-equality against the direct evaluation.
//!
//! ```text
//! cargo run --release --example indexed_views
//! ```

use matview::prelude::*;
use std::time::Instant;

fn main() {
    let (db, _) = generate_tpch(&TpchScale::small(), 7);
    let catalog = db.catalog.clone();

    let views_sql = [
        // Revenue per customer (Example 4's v4).
        "CREATE VIEW rev_by_cust WITH SCHEMABINDING AS \
         SELECT o_custkey, COUNT_BIG(*) AS cnt, \
                SUM(l_extendedprice * l_quantity) AS revenue \
         FROM dbo.lineitem, dbo.orders WHERE l_orderkey = o_orderkey \
         GROUP BY o_custkey",
        // Order volume per part and ship mode.
        "CREATE VIEW vol_by_part WITH SCHEMABINDING AS \
         SELECT l_partkey, l_shipmode, COUNT_BIG(*) AS cnt, SUM(l_quantity) AS qty \
         FROM dbo.lineitem GROUP BY l_partkey, l_shipmode",
        // Pre-joined lineitem-part slice for mid-sized parts.
        "CREATE VIEW li_part WITH SCHEMABINDING AS \
         SELECT l_orderkey, l_quantity, l_extendedprice, p_partkey, p_size, p_brand \
         FROM dbo.lineitem, dbo.part WHERE l_partkey = p_partkey AND p_size <= 40",
    ];

    let engine = MatchingEngine::new(catalog.clone(), MatchConfig::default());
    let mut store = ViewStore::new();
    for sql in views_sql {
        let view = parse_view(sql, &catalog).expect("view SQL");
        let rows = materialize_view(&db, &view);
        println!("materialized {:12} {:>8} rows", view.name, rows.len());
        let id = engine.add_view(view).unwrap();
        store.put(id, rows);
    }
    println!();

    let queries = [
        (
            "revenue of one customer segment",
            "SELECT o_custkey, SUM(l_extendedprice * l_quantity) AS revenue \
             FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND o_custkey BETWEEN 100 AND 200 \
             GROUP BY o_custkey",
        ),
        (
            "total quantity per ship mode for small parts",
            "SELECT l_partkey, l_shipmode, SUM(l_quantity) AS qty \
             FROM lineitem WHERE l_partkey <= 150 GROUP BY l_partkey, l_shipmode",
        ),
        (
            "lineitems of mid-sized parts",
            "SELECT l_orderkey, l_quantity, p_brand FROM lineitem, part \
             WHERE l_partkey = p_partkey AND p_size BETWEEN 10 AND 25",
        ),
        (
            "revenue per nation (Example 4 shape)",
            "SELECT c_nationkey, SUM(l_extendedprice * l_quantity) AS revenue \
             FROM lineitem, orders, customer \
             WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey \
             GROUP BY c_nationkey",
        ),
    ];

    let base_cfg = OptimizerConfig {
        use_views: false,
        ..OptimizerConfig::default()
    };
    for (label, sql) in queries {
        let query = parse_query(sql, &catalog).expect("query SQL");
        let baseline = Optimizer::new(&engine, base_cfg.clone()).optimize(&query);
        let with_views = Optimizer::new(&engine, OptimizerConfig::default()).optimize(&query);

        let t0 = Instant::now();
        let base_rows = execute_plan(&db, &store, &baseline.plan);
        let base_time = t0.elapsed();
        let t1 = Instant::now();
        let view_rows = execute_plan(&db, &store, &with_views.plan);
        let view_time = t1.elapsed();

        assert!(bag_eq(&base_rows, &view_rows), "plans disagree for {label}");
        println!("query: {label}");
        println!(
            "  baseline: cost {:>12.0}  exec {:>9.3?}   with views: cost {:>12.0}  exec {:>9.3?}  ({})",
            baseline.cost,
            base_time,
            with_views.cost,
            view_time,
            if with_views.plan.uses_view() {
                "USES VIEW"
            } else {
                "no view"
            }
        );
        if with_views.plan.uses_view() {
            let speedup = base_time.as_secs_f64() / view_time.as_secs_f64().max(1e-9);
            println!(
                "  speedup: {speedup:.1}x, identical {} result rows",
                base_rows.len()
            );
        }
        println!();
    }
}
