//! The paper's extensions in action: check-constraint folding (section
//! 3.1.2), the nullable-FK relaxation (section 3.2 / Example 5), and
//! base-table backjoins (section 7 future work) — all implemented and all
//! verified by execution.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use matview::prelude::*;

fn main() {
    let (db, _) = generate_tpch(&TpchScale::small(), 2026);
    let catalog = db.catalog.clone();

    // ------------------------------------------------------------------
    // 1. Check-constraint folding.
    // ------------------------------------------------------------------
    println!("=== check constraints (section 3.1.2) ===");
    let view = parse_view(
        "CREATE VIEW nonneg AS SELECT o_orderkey, o_totalprice \
         FROM dbo.orders WHERE o_totalprice >= 0",
        &catalog,
    )
    .unwrap();
    let query = parse_query("SELECT o_orderkey FROM orders", &catalog).unwrap();

    let plain = MatchingEngine::new(catalog.clone(), MatchConfig::default());
    plain.add_view(view.clone()).unwrap();
    println!(
        "without the constraint: {} substitutes (the view's o_totalprice >= 0 \
         range is not implied)",
        plain.find_substitutes(&query).len()
    );

    let engine = MatchingEngine::new(catalog.clone(), MatchConfig::default());
    let orders = catalog.table_by_name("orders").unwrap();
    engine
        .add_check_constraint(
            orders,
            matview::expr::BoolExpr::cmp(
                ScalarExpr::Column(ColRef::new(0, 3)),
                CmpOp::Ge,
                ScalarExpr::Literal(Value::Int(0)),
            ),
        )
        .unwrap();
    engine.add_view(view.clone()).unwrap();
    let subs = engine.find_substitutes(&query);
    println!(
        "with CHECK (o_totalprice >= 0): {} substitute, {} compensating predicates",
        subs.len(),
        subs[0].1.predicates.len()
    );
    let rows = materialize_view(&db, &view);
    let direct = execute_spjg(&db, &query);
    assert!(bag_eq(&execute_substitute(&rows, &subs[0].1), &direct));
    println!(
        "verified against direct execution ({} rows)\n",
        direct.len()
    );

    // ------------------------------------------------------------------
    // 2. Base-table backjoins.
    // ------------------------------------------------------------------
    println!("=== base-table backjoins (section 7) ===");
    let skinny = parse_view(
        "CREATE VIEW li_keys AS SELECT l_orderkey, l_linenumber, l_quantity \
         FROM dbo.lineitem WHERE l_quantity > 25",
        &catalog,
    )
    .unwrap();
    let query = parse_query(
        "SELECT l_orderkey, l_extendedprice FROM lineitem \
         WHERE l_quantity > 25 AND l_quantity <= 40",
        &catalog,
    )
    .unwrap();

    let plain = MatchingEngine::new(catalog.clone(), MatchConfig::default());
    plain.add_view(skinny.clone()).unwrap();
    println!(
        "strict matcher: {} substitutes (l_extendedprice is not a view output)",
        plain.find_substitutes(&query).len()
    );

    let engine = MatchingEngine::new(
        catalog.clone(),
        MatchConfig {
            allow_backjoins: true,
            ..MatchConfig::default()
        },
    );
    let rows = materialize_view(&db, &skinny);
    engine.add_view(skinny).unwrap();
    let subs = engine.find_substitutes(&query);
    let sub = &subs[0].1;
    println!(
        "with backjoins: 1 substitute, joining back to {} base table(s) on the \
         view's (l_orderkey, l_linenumber) key",
        sub.backjoins.len()
    );
    let got = matview::exec::execute_substitute_with(&db, &rows, sub);
    let direct = execute_spjg(&db, &query);
    assert!(bag_eq(&got, &direct));
    println!(
        "verified against direct execution ({} rows)\n",
        direct.len()
    );

    // ------------------------------------------------------------------
    // 3. Aggregation backjoin with regrouping.
    // ------------------------------------------------------------------
    println!("=== aggregation roll-up through a backjoin ===");
    let rev = parse_view(
        "CREATE VIEW rev_by_order AS \
         SELECT o_orderkey, COUNT_BIG(*) AS cnt, SUM(l_quantity) AS qty \
         FROM dbo.lineitem, dbo.orders WHERE l_orderkey = o_orderkey \
         GROUP BY o_orderkey",
        &catalog,
    )
    .unwrap();
    let query = parse_query(
        "SELECT o_custkey, SUM(l_quantity) AS qty \
         FROM lineitem, orders WHERE l_orderkey = o_orderkey \
         GROUP BY o_custkey",
        &catalog,
    )
    .unwrap();
    let engine = MatchingEngine::new(
        catalog.clone(),
        MatchConfig {
            allow_backjoins: true,
            ..MatchConfig::default()
        },
    );
    let rows = materialize_view(&db, &rev);
    engine.add_view(rev).unwrap();
    let subs = engine.find_substitutes(&query);
    let sub = &subs[0].1;
    println!(
        "per-order revenue view answers a per-customer query: backjoin orders \
         (o_custkey is functionally determined by the group key), regroup = {}",
        sub.regroups()
    );
    let got = matview::exec::execute_substitute_with(&db, &rows, sub);
    let direct = execute_spjg(&db, &query);
    assert!(bag_eq(&got, &direct));
    println!(
        "verified against direct execution ({} groups)",
        direct.len()
    );
}
