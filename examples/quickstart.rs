//! Quick start: define a materialized view in SQL, let the matcher rewrite
//! a query against it, and verify the rewrite returns identical rows.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use matview::plan::display::{sql_of, sql_of_substitute};
use matview::prelude::*;

fn main() {
    // A small TPC-H database with statistics.
    let (db, _) = generate_tpch(&TpchScale::small(), 42);
    println!(
        "generated TPC-H: {} lineitems, {} orders, {} parts\n",
        db.row_count(db.catalog.table_by_name("lineitem").unwrap()),
        db.row_count(db.catalog.table_by_name("orders").unwrap()),
        db.row_count(db.catalog.table_by_name("part").unwrap()),
    );

    // The paper's Example 1, lightly adapted: an indexed view precomputing
    // per-part gross revenue for cheap parts named like '%steel%'.
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    let view = parse_view(
        "CREATE VIEW v1 WITH SCHEMABINDING AS \
         SELECT p_partkey, p_name, p_retailprice, COUNT_BIG(*) AS cnt, \
                SUM(l_extendedprice * l_quantity) AS gross_revenue \
         FROM dbo.lineitem, dbo.part \
         WHERE p_partkey < 400 AND p_name LIKE '%steel%' AND p_partkey = l_partkey \
         GROUP BY p_partkey, p_name, p_retailprice",
        &db.catalog,
    )
    .expect("view parses");
    println!(
        "materialized view v1:\n{}\n",
        sql_of(&view.expr, &db.catalog)
    );
    let view_rows = materialize_view(&db, &view);
    println!("v1 materialized: {} rows\n", view_rows.len());
    engine.add_view(view).unwrap();

    // A query asking for revenue of an even narrower slice of parts.
    let query = parse_query(
        "SELECT p_partkey, SUM(l_extendedprice * l_quantity) AS revenue \
         FROM lineitem, part \
         WHERE p_partkey = l_partkey AND p_partkey < 200 AND p_name LIKE '%steel%' \
         GROUP BY p_partkey",
        &db.catalog,
    )
    .expect("query parses");
    println!("query:\n{}\n", sql_of(&query, &db.catalog));

    // The view-matching rule: can the query be computed from v1?
    let substitutes = engine.find_substitutes(&query);
    assert_eq!(substitutes.len(), 1, "v1 answers the query");
    let (_, substitute) = &substitutes[0];
    println!(
        "matched! rewritten query:\n{}\n",
        sql_of_substitute(substitute, &engine.views())
    );

    // Correctness: the rewrite returns exactly the original rows.
    let direct = execute_spjg(&db, &query);
    let rewritten = execute_substitute(&view_rows, substitute);
    assert!(bag_eq(&direct, &rewritten));
    println!(
        "verified: both plans return the same {} rows (bag equality)",
        direct.len()
    );
}
