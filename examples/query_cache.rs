//! Query-result caching via view matching — the introduction's scenario:
//! "A smart system might also cache and reuse results of previously
//! computed queries. Cached results can be treated as temporary
//! materialized views, easily resulting in thousands of materialized
//! views."
//!
//! This example runs a stream of related analytical queries. After
//! executing each query the engine registers its expression as a temporary
//! view holding the cached result; later queries that are subsumed by an
//! earlier one are answered from the cache instead of base tables.
//!
//! ```text
//! cargo run --release --example query_cache
//! ```

use matview::prelude::*;
use std::time::Instant;

fn main() {
    let (db, _) = generate_tpch(&TpchScale::small(), 99);
    let catalog = db.catalog.clone();
    let engine = MatchingEngine::new(catalog.clone(), MatchConfig::default());
    let mut cache: Vec<(ViewId, Vec<Vec<Value>>)> = Vec::new();

    // A drill-down session: each query narrows the previous one.
    let stream = [
        // Broad scan: becomes the cache entry everything else hits.
        "SELECT l_orderkey, l_partkey, l_quantity, l_extendedprice, l_shipdate \
         FROM lineitem WHERE l_shipdate >= DATE '1994-01-01'",
        // Narrower date window: subsumed by the first.
        "SELECT l_orderkey, l_quantity FROM lineitem \
         WHERE l_shipdate >= DATE '1996-01-01'",
        // Same window plus a quantity filter: still subsumed.
        "SELECT l_orderkey FROM lineitem \
         WHERE l_shipdate >= DATE '1996-01-01' AND l_quantity BETWEEN 10 AND 20",
        // Aggregation over the cached rows.
        "SELECT l_partkey, COUNT_BIG(*) AS cnt, SUM(l_quantity) AS qty \
         FROM lineitem WHERE l_shipdate >= DATE '1995-06-01' \
         GROUP BY l_partkey",
        // Outside the cached window: must miss.
        "SELECT l_orderkey FROM lineitem WHERE l_shipdate < DATE '1993-01-01'",
    ];

    for (i, sql) in stream.iter().enumerate() {
        let query = parse_query(sql, &catalog).expect("query SQL");

        // Try the cache first.
        let hits = engine.find_substitutes(&query);
        let (rows, how, elapsed) = if let Some((view_id, substitute)) = hits.first() {
            let cached = &cache.iter().find(|(id, _)| id == view_id).unwrap().1;
            let t = Instant::now();
            let rows = execute_substitute(cached, substitute);
            (rows, format!("cache hit on q{}", view_id.0), t.elapsed())
        } else {
            let t = Instant::now();
            let rows = execute_spjg(&db, &query);
            (
                rows,
                "cache miss — executed from base tables".into(),
                t.elapsed(),
            )
        };
        println!("q{i}: {} rows in {:?} ({how})", rows.len(), elapsed);

        // Verify cached answers against the ground truth.
        let direct = execute_spjg(&db, &query);
        assert!(bag_eq(&rows, &direct), "cache returned wrong rows for q{i}");

        // Install this query's result as a temporary materialized view so
        // later queries can reuse it. (SPJ results only: an indexed view
        // needs a key; aggregation results would also qualify with their
        // grouping key, shown for q3.)
        let view = ViewDef::new(format!("q{i}"), query);
        if view.check_indexable().is_ok() {
            let rows_for_cache = direct;
            if let Ok(id) = engine.add_view(view) {
                cache.push((id, rows_for_cache));
            }
        }
    }

    println!("\ncached results registered as views: {}", cache.len());
    let stats = engine.stats();
    println!(
        "matching-rule invocations: {}, substitutes produced: {}",
        stats.invocations, stats.substitutes
    );

    // Eviction: drop the big q0 entry; the next repeat of q1 misses.
    let (q0_id, _) = cache[0];
    engine.remove_view(q0_id);
    let q1 = parse_query(stream[1], &catalog).unwrap();
    let hits = engine.find_substitutes(&q1);
    // q1's own cached result still answers it, but q0 no longer appears.
    assert!(hits.iter().all(|(id, _)| *id != q0_id));
    println!(
        "after evicting q0: {} live cache entries, q1 answered by {:?}",
        engine.live_view_count(),
        hits.first().map(|(id, _)| *id)
    );
}
