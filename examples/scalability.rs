//! Scalability demonstration — the headline claim: "Optimization time
//! increases slowly with the number of views but remains low even up to a
//! thousand."
//!
//! Registers 1000 randomly generated views (the section 5 workload) and
//! optimizes a set of queries at increasing view counts, printing
//! per-query optimization time and the filter tree's pruning power.
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use matview::prelude::*;
use std::time::Instant;

fn main() {
    let (db, _) = generate_tpch(&TpchScale::small(), 3);
    let catalog = db.catalog.clone();

    println!("generating 1000 views and 100 queries (section 5 recipe)...\n");
    let views = Generator::new(&catalog, WorkloadParams::views(), 11).views(1000);
    let queries = Generator::new(&catalog, WorkloadParams::queries(), 22).queries(100);

    println!("| views | avg optimize (ms) | candidates/invocation | % of views examined | substitutes/query |");
    println!("|---|---|---|---|---|");
    for n in [0usize, 250, 500, 750, 1000] {
        let engine = MatchingEngine::new(catalog.clone(), MatchConfig::default());
        for v in views.iter().take(n) {
            engine.add_view(v.clone()).unwrap();
        }
        let optimizer = Optimizer::new(&engine, OptimizerConfig::default());
        let started = Instant::now();
        for q in &queries {
            let _ = optimizer.optimize(q);
        }
        let elapsed = started.elapsed();
        let stats = engine.stats();
        let cand_per_inv = if stats.invocations > 0 {
            stats.candidates as f64 / stats.invocations as f64
        } else {
            0.0
        };
        println!(
            "| {n} | {:.2} | {:.2} | {:.3}% | {:.2} |",
            elapsed.as_secs_f64() * 1000.0 / queries.len() as f64,
            cand_per_inv,
            stats.candidate_fraction() * 100.0,
            stats.substitutes as f64 / queries.len() as f64,
        );
    }
    println!(
        "\nThe filter tree examines a fraction of a percent of the views per \
         invocation;\noptimization time grows slowly and linearly with the view count."
    );
}
