//! Offline stand-in for the subset of `rand` 0.9 used by this workspace:
//! `StdRng::seed_from_u64` plus `Rng::random_range` over integer and
//! float ranges. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic, high quality for workload generation, and with no
//! dependency on the real crate (the build container has no network).
//!
//! Note the stream differs from the real `rand::rngs::StdRng` (ChaCha12),
//! so seeds produce different-but-still-deterministic workloads.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, SeedableRng};

    /// xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }
}

/// A range that knows how to draw a uniform sample of `T` from an `Rng`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be drawn uniformly from a range. One blanket
/// `SampleRange` impl per range shape keeps type inference identical to
/// the real crate (the element type is pinned by the range's own type).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self, inclusive: bool) -> Self;
}

fn uniform_u64(next: &mut dyn FnMut() -> u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); the tiny residual bias of
    // the no-rejection variant is irrelevant for workload generation.
    ((next() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(
                next: &mut dyn FnMut() -> u64,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + inclusive as i128) as u64;
                (lo as i128 + uniform_u64(next, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_uniform(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self, _inclusive: bool) -> Self {
        // 53 random mantissa bits in [0, 1).
        let unit = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let unit = (next() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_uniform(&mut || rng.next_u64(), self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_uniform(&mut || rng.next_u64(), lo, hi, true)
    }
}

/// The user-facing generator trait.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open or inclusive range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: i64 = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y: usize = rng.random_range(3..=9usize);
            assert!((3..=9).contains(&y));
            let f: f64 = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn covers_full_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
