//! Offline stand-in for the subset of `criterion` 0.5 used by this
//! workspace's benches: `bench_function`, `benchmark_group` /
//! `bench_with_input`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a simple calibrated loop reporting the median
//! and min of `sample_size` wall-clock samples — no statistics engine,
//! no plots, but honest numbers on quiet machines.

use std::time::{Duration, Instant};

/// Per-sample measurement driver handed to `b.iter(...)`.
pub struct Bencher {
    samples: usize,
    /// Collected ns-per-iteration samples, filled by `iter`.
    results: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Time the closure: calibrate an iteration count that runs for at
    /// least ~2 ms, then take `sample_size` timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: find n with runtime >= 2 ms (capped for very slow bodies).
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || n >= 1 << 20 {
                break;
            }
            n *= 4;
        }
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            self.results
                .push(start.elapsed().as_nanos() as f64 / n as f64);
        }
    }
}

fn report(name: &str, results: &mut [f64]) {
    if results.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = results[results.len() / 2];
    let min = results[0];
    println!("{name:<50} median {median:>12.1} ns/iter   (min {min:.1})");
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id.text);
        report(&full, &mut b.results);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        let full = format!("{}/{}", self.name, name);
        report(&full, &mut b.results);
        self
    }

    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &mut b.results);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            counter
        });
        assert_eq!(b.results.len(), 5);
        assert!(b.results.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("case", 42), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
