//! Offline stand-in for the subset of `proptest` 1.x used by this
//! workspace's property tests. Cases are drawn by random sampling from a
//! per-test deterministic seed; there is **no shrinking** — a failing
//! case panics with the drawn values still in scope of the assertion
//! message. The API mirrors the real crate so the tests compile
//! unchanged against either.

pub mod test_runner {
    /// Configuration block accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// SplitMix64 stream seeded from the test name (FNV-1a), so every
    /// property gets a distinct but fully reproducible case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF29CE484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. The real crate's `Strategy` also carries a
    /// value tree for shrinking; here a strategy is just a sampler.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Always produces a clone of the given value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    #[derive(Debug)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Self::default()
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// `any::<T>()` — the canonical strategy for a type. Supported for
    /// the primitives the workspace's tests draw (`bool`, integers).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any::default()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// The size argument of [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list (`prop::sample::select`).
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (`prop::option::of`), biased 3:1
    /// toward `Some` like the real crate's default.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `prop_assert!` — panics on failure (no shrinking, so a plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(expr)]` inner attribute followed by test
/// functions whose arguments are drawn from strategies (`arg in strat`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;
     $( $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_collections_draw_in_bounds(
            xs in prop::collection::vec(0u8..12, 0..6),
            pair in (0u32..8, -50i64..50),
            flag in any::<bool>(),
            opt in prop::option::of(-5i64..5),
        ) {
            prop_assert!(xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 12));
            prop_assert!(pair.0 < 8 && (-50..50).contains(&pair.1));
            let _ = flag;
            if let Some(v) = opt {
                prop_assert!((-5..5).contains(&v));
            }
        }
    }

    #[test]
    fn select_draws_from_list() {
        let s = crate::sample::select(vec![1, 2, 3]);
        let mut rng = crate::test_runner::TestRng::for_test("select");
        for _ in 0..100 {
            let v = crate::strategy::Strategy::generate(&s, &mut rng);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn sequences_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
